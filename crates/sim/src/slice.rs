//! The Slice: 16 clusters orchestrated by a sequencer.
//!
//! A slice receives the input event stream (all clusters see the same event,
//! paper §III-D.4), filters it against the addresses of the neurons it
//! implements, shifts the addresses relative to each cluster's base and
//! dispatches the state updates to the clusters. Output spikes are pushed
//! into per-cluster FIFOs and drained by the slice collector.

use serde::{Deserialize, Serialize};

use crate::cluster::{Cluster, ClusterState};
use crate::config::SneConfig;
use crate::mapping::{Contribution, LifHardwareParams};
use crate::plan::EventRow;

/// Statistics of one `UPDATE_OP` processed by a slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UpdateOutcome {
    /// Synaptic operations performed by this slice for the event.
    pub synaptic_ops: u64,
    /// Clusters that were active during the event window.
    pub active_clusters: u64,
    /// Clusters that were clock-gated during the event window.
    pub gated_clusters: u64,
}

/// Statistics of one `FIRE_OP` processed by a slice (test-only companion of
/// the allocation-free [`Slice::process_fire_into`]).
#[cfg(test)]
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FireOutcome {
    /// Global output-neuron indices that fired, in cluster/TDM order.
    pub fired: Vec<usize>,
    /// Clusters that executed the scan.
    pub scanned_clusters: u64,
    /// Clusters that skipped the scan thanks to the TLU.
    pub skipped_clusters: u64,
}

/// Scan/skip accounting of one `FIRE_OP` (the fired neurons are appended to
/// a caller-provided buffer by [`Slice::process_fire_into`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FireScanSummary {
    /// Clusters that executed the scan.
    pub scanned_clusters: u64,
    /// Clusters that skipped the scan thanks to the TLU.
    pub skipped_clusters: u64,
}

/// One slice of the engine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Slice {
    clusters: Vec<Cluster>,
    neurons_per_cluster: usize,
    /// `log2(neurons_per_cluster)` when it is a power of two (the paper's 64
    /// and every test geometry): the hot path then maps neuron → cluster
    /// with a shift instead of an integer division.
    cluster_shift: Option<u32>,
    /// Global output-neuron index of the first neuron mapped on this slice.
    base: usize,
    /// Number of output neurons mapped on this slice in the current pass.
    assigned: usize,
    /// Per-cluster epoch of the last event window that touched it, against
    /// [`Slice::epoch`]: the per-event cluster activity bookkeeping without
    /// any per-event clearing (and without per-event allocation).
    touch_epoch: Vec<u32>,
    /// Epoch of the current event window.
    epoch: u32,
}

impl Slice {
    /// Creates a slice with the cluster geometry of `config`.
    #[must_use]
    pub fn new(config: &SneConfig) -> Self {
        let clusters = (0..config.clusters_per_slice)
            .map(|_| Cluster::new(config.neurons_per_cluster))
            .collect();
        Self {
            clusters,
            neurons_per_cluster: config.neurons_per_cluster,
            cluster_shift: config
                .neurons_per_cluster
                .is_power_of_two()
                .then(|| config.neurons_per_cluster.trailing_zeros()),
            base: 0,
            assigned: 0,
            touch_epoch: vec![0; config.clusters_per_slice],
            epoch: 0,
        }
    }

    /// Starts a new event window and returns its epoch (every cluster's
    /// touch mark is older by construction).
    #[inline]
    fn next_epoch(&mut self) -> u32 {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped after 2^32 event windows: restart the epoch space.
            self.touch_epoch.iter_mut().for_each(|e| *e = 0);
            self.epoch = 1;
        }
        self.epoch
    }

    /// Cluster index of a slice-local neuron index.
    #[inline]
    fn cluster_of(&self, local: usize) -> usize {
        match self.cluster_shift {
            Some(shift) => local >> shift,
            None => local / self.neurons_per_cluster,
        }
    }

    /// Number of clusters.
    #[must_use]
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Maximum number of neurons the slice can implement.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.clusters.len() * self.neurons_per_cluster
    }

    /// Global output-neuron range currently mapped on this slice.
    #[must_use]
    pub fn assigned_range(&self) -> std::ops::Range<usize> {
        self.base..self.base + self.assigned
    }

    /// Configures the slice for a mapping pass: neurons
    /// `[base, base + count)` of the layer are implemented here. All neuron
    /// state is reset.
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds the slice capacity.
    pub fn configure_pass(&mut self, base: usize, count: usize) {
        assert!(
            count <= self.capacity(),
            "pass assignment exceeds slice capacity"
        );
        self.base = base;
        self.assigned = count;
        self.reset();
    }

    /// Resets all neuron state (`RST_OP`).
    pub fn reset(&mut self) {
        for cluster in &mut self.clusters {
            cluster.reset();
        }
    }

    /// Snapshots the architectural state of every cluster into `out`
    /// (one [`ClusterState`] per cluster, in cluster order).
    ///
    /// # Panics
    ///
    /// Panics if `out` does not hold exactly one slot per cluster.
    pub fn export_state(&self, out: &mut [ClusterState]) {
        assert_eq!(out.len(), self.clusters.len(), "cluster slot mismatch");
        for (cluster, slot) in self.clusters.iter().zip(out.iter_mut()) {
            cluster.snapshot_into(slot);
        }
    }

    /// Restores the architectural state of every cluster from `states`.
    ///
    /// # Panics
    ///
    /// Panics if `states` does not hold exactly one snapshot per cluster or
    /// a snapshot has the wrong neuron count.
    pub fn import_state(&mut self, states: &[ClusterState]) {
        assert_eq!(states.len(), self.clusters.len(), "cluster slot mismatch");
        for (cluster, state) in self.clusters.iter_mut().zip(states) {
            cluster.restore(state);
        }
    }

    /// Processes one `UPDATE_OP`: the contributions (already filtered to this
    /// slice's range by the address filter) are dispatched to the clusters,
    /// one [`Cluster::integrate`] call per synapse.
    ///
    /// This is the **naive reference datapath** — the per-synapse dispatch
    /// the compiled plan's batched window form
    /// ([`Slice::process_update_planned`]) is measured against and must
    /// reproduce bit-exactly.
    pub fn process_update(
        &mut self,
        contributions: &[Contribution],
        params: LifHardwareParams,
        clock_gating: bool,
    ) -> UpdateOutcome {
        let epoch = self.next_epoch();
        let mut active = 0u64;
        for c in contributions {
            debug_assert!(self.assigned_range().contains(&c.neuron));
            let local = c.neuron - self.base;
            let cluster_index = self.cluster_of(local);
            let neuron_index = local - cluster_index * self.neurons_per_cluster;
            self.clusters[cluster_index].integrate(neuron_index, c.weight, params);
            if self.touch_epoch[cluster_index] != epoch {
                self.touch_epoch[cluster_index] = epoch;
                active += 1;
            }
        }
        let gated = if clock_gating {
            self.clusters.len() as u64 - active
        } else {
            // Without clock gating every cluster toggles during the event window.
            0
        };
        let active = if clock_gating {
            active
        } else {
            self.clusters.len() as u64
        };
        UpdateOutcome {
            synaptic_ops: contributions.len() as u64,
            active_clusters: active,
            gated_clusters: gated,
        }
    }

    /// The fused compiled datapath, block form: applies a run of consecutive
    /// `UPDATE_OP` event rows (resolved once per run by the engine against
    /// the compiled [`crate::plan::LayerPlan`]) and integrates their
    /// contributions **in place**, without materializing contribution lists.
    /// The borrow splitting and geometry setup happen once per block, not
    /// once per event — the op streams between `FIRE_OP` barriers are
    /// exactly such runs.
    ///
    /// Exploits the table structure the naive path does not have: weights
    /// are pre-resolved, each (output channel, kernel row) is one contiguous
    /// neuron span, and spans that stay in the same cluster share one
    /// open/close (catch-up, dirty, counters) window round trip.
    ///
    /// Pushes one synaptic-ops entry per event into `update_ops` and returns
    /// the **aggregated** outcome of the block. Bit-identical to resolving
    /// every event through
    /// [`LayerPlan::contributions_in_range_into`][crate::plan::LayerPlan::contributions_in_range_into]
    /// and dispatching via [`Slice::process_update`]: same states, same
    /// counters, same totals (within one event window each neuron receives
    /// at most one contribution, so apply order cannot matter).
    pub fn process_update_block_planned(
        &mut self,
        rows: &[EventRow<'_>],
        params: LifHardwareParams,
        clock_gating: bool,
        update_ops: &mut Vec<u64>,
    ) -> UpdateOutcome {
        let range = self.assigned_range();
        // Split the borrows and copy the geometry into locals once per
        // block: the cluster calls below take `&mut` into `clusters`, and
        // without the split the compiler must re-load every `self` field per
        // iteration (it cannot prove the calls leave them untouched).
        let base = self.base;
        let npc = self.neurons_per_cluster;
        let shift = self.cluster_shift;
        let num_clusters = self.clusters.len() as u64;
        let mut epoch = self.epoch;
        let clusters = &mut self.clusters[..];
        let touch_epoch = &mut self.touch_epoch[..];
        let cluster_of = |local: usize| match shift {
            Some(shift) => local >> shift,
            None => local / npc,
        };
        // The output-channel window of the slice range is a per-layer
        // constant (every row of a block belongs to the same layer), so the
        // two divisions behind it run once per block, not once per event.
        // `(first output channel, last output channel, clamped range end)`,
        // with `first > last` encoding an empty intersection.
        let mut conv_channels: Option<(usize, usize, usize)> = None;
        let mut aggregate = UpdateOutcome::default();
        for row in rows {
            epoch = epoch.wrapping_add(1);
            if epoch == 0 {
                // Wrapped after 2^32 event windows: restart the epoch space.
                touch_epoch.iter_mut().for_each(|e| *e = 0);
                epoch = 1;
            }
            // Manually tracked cluster window (usize::MAX = none open):
            // plain locals keep the event application one straight-line
            // loop.
            let mut open = usize::MAX;
            let mut win_max = i16::from(i8::MIN);
            let mut win_taps = 0u64;
            let mut active = 0u64;
            let mut ops = 0u64;
            match *row {
                EventRow::Conv {
                    row_offsets,
                    row_weights,
                    rows_per_oc,
                    taps_per_row,
                    event_base,
                    plane,
                    total_neurons,
                } => {
                    // Only the output channels whose planes intersect the
                    // range can contribute (the address filter).
                    let (first_oc, last_oc, end) = *conv_channels.get_or_insert_with(|| {
                        let end = range.end.min(total_neurons);
                        if range.start < end {
                            (range.start / plane, (end - 1) / plane, end)
                        } else {
                            (1, 0, end)
                        }
                    });
                    if first_oc <= last_oc {
                        let first_span = first_oc * rows_per_oc;
                        let last_span = (last_oc + 1) * rows_per_oc;
                        let offsets = &row_offsets[first_span..last_span];
                        let span_weights =
                            &row_weights[first_span * taps_per_row..last_span * taps_per_row];
                        for (&offset, taps) in
                            offsets.iter().zip(span_weights.chunks_exact(taps_per_row))
                        {
                            let lowest = (event_base + i64::from(offset)) as usize;
                            // Clip the contiguous span to the slice range
                            // (a no-op for fully covered planes).
                            let lo = lowest.max(range.start);
                            let hi = (lowest + taps_per_row).min(end);
                            if lo >= hi {
                                continue;
                            }
                            let mut weights = &taps[lo - lowest..hi - lowest];
                            let mut local = lo - base;
                            loop {
                                let cluster_index = cluster_of(local);
                                let cluster_start = cluster_index * npc;
                                let take = weights.len().min(cluster_start + npc - local);
                                if cluster_index != open {
                                    if open != usize::MAX {
                                        clusters[open].close_window(win_max, win_taps);
                                        ops += win_taps;
                                    }
                                    clusters[cluster_index].open_window(params);
                                    if touch_epoch[cluster_index] != epoch {
                                        touch_epoch[cluster_index] = epoch;
                                        active += 1;
                                    }
                                    open = cluster_index;
                                    win_max = i16::from(i8::MIN);
                                    win_taps = 0;
                                }
                                let span_max = clusters[cluster_index]
                                    .accumulate_span(local - cluster_start, &weights[..take]);
                                win_max = win_max.max(span_max);
                                win_taps += take as u64;
                                if take == weights.len() {
                                    break;
                                }
                                local += take;
                                weights = &weights[take..];
                            }
                        }
                    }
                }
                EventRow::Dense { weights } => {
                    // Dense outputs are contiguous: walk whole clusters.
                    let end = range.end.min(weights.len());
                    let mut o = range.start.min(end);
                    while o < end {
                        let local = o - base;
                        let cluster_index = cluster_of(local);
                        let cluster_start = cluster_index * npc;
                        let run_end = end.min(base + cluster_start + npc);
                        if cluster_index != open {
                            if open != usize::MAX {
                                clusters[open].close_window(win_max, win_taps);
                                ops += win_taps;
                            }
                            clusters[cluster_index].open_window(params);
                            if touch_epoch[cluster_index] != epoch {
                                touch_epoch[cluster_index] = epoch;
                                active += 1;
                            }
                            open = cluster_index;
                            win_max = i16::from(i8::MIN);
                            win_taps = 0;
                        }
                        let span_max = clusters[cluster_index]
                            .accumulate_span(local - cluster_start, &weights[o..run_end]);
                        win_max = win_max.max(span_max);
                        win_taps += (run_end - o) as u64;
                        o = run_end;
                    }
                }
            }
            if open != usize::MAX {
                clusters[open].close_window(win_max, win_taps);
                ops += win_taps;
            }
            update_ops.push(ops);
            aggregate.synaptic_ops += ops;
            if clock_gating {
                aggregate.active_clusters += active;
                aggregate.gated_clusters += num_clusters - active;
            } else {
                // Without clock gating every cluster toggles per window.
                aggregate.active_clusters += num_clusters;
            }
        }
        self.epoch = epoch;
        aggregate
    }

    /// Single-event convenience form of
    /// [`Slice::process_update_block_planned`] (the engine's worker uses the
    /// block form; this one backs tests and microbenchmarks).
    pub fn process_update_planned(
        &mut self,
        row: EventRow<'_>,
        params: LifHardwareParams,
        clock_gating: bool,
    ) -> UpdateOutcome {
        let mut update_ops = Vec::with_capacity(1);
        self.process_update_block_planned(
            std::slice::from_ref(&row),
            params,
            clock_gating,
            &mut update_ops,
        )
    }

    /// Processes one `FIRE_OP`: every cluster scans its TDM neurons and emits
    /// spikes for those above threshold. Returns global neuron indices.
    ///
    /// Test-only convenience: it allocates per call, so the public API is
    /// the allocation-free [`Slice::process_fire_into`], which the engine's
    /// hot path uses exclusively.
    #[cfg(test)]
    pub fn process_fire(&mut self, params: LifHardwareParams, tlu_enabled: bool) -> FireOutcome {
        let mut fired = Vec::new();
        let summary = self.process_fire_into(params, tlu_enabled, &mut fired);
        FireOutcome {
            fired,
            scanned_clusters: summary.scanned_clusters,
            skipped_clusters: summary.skipped_clusters,
        }
    }

    /// Processes one `FIRE_OP`: every cluster scans its TDM neurons and the
    /// global indices of firing neurons are appended to `out` (not cleared
    /// first), so the engine's per-slice workers reuse one buffer per slice
    /// across the run.
    pub fn process_fire_into(
        &mut self,
        params: LifHardwareParams,
        tlu_enabled: bool,
        out: &mut Vec<usize>,
    ) -> FireScanSummary {
        let mut summary = FireScanSummary::default();
        for (cluster_index, cluster) in self.clusters.iter_mut().enumerate() {
            let cluster_base = self.base + cluster_index * self.neurons_per_cluster;
            let local_start = out.len();
            let executed = cluster.fire_scan_into(params, tlu_enabled, out);
            if executed {
                summary.scanned_clusters += 1;
            } else {
                summary.skipped_clusters += 1;
            }
            // Shift the appended local indices to global addresses, dropping
            // neurons beyond the assigned range: they are architectural
            // padding (the last cluster of a pass may be partially used) and
            // can never have received a contribution, so they never fire,
            // but guard anyway.
            let mut write = local_start;
            for read in local_start..out.len() {
                let global = cluster_base + out[read];
                if global < self.base + self.assigned {
                    out[write] = global;
                    write += 1;
                }
            }
            out.truncate(write);
        }
        summary
    }

    /// Total synaptic operations performed by this slice's clusters.
    #[must_use]
    pub fn synaptic_ops(&self) -> u64 {
        self.clusters
            .iter()
            .map(|c| c.counters().synaptic_ops)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::Contribution;

    fn small_config() -> SneConfig {
        SneConfig {
            clusters_per_slice: 4,
            neurons_per_cluster: 8,
            ..SneConfig::default()
        }
    }

    const PARAMS: LifHardwareParams = LifHardwareParams {
        leak: 0,
        threshold: 5,
    };

    #[test]
    fn capacity_is_clusters_times_neurons() {
        let slice = Slice::new(&small_config());
        assert_eq!(slice.num_clusters(), 4);
        assert_eq!(slice.capacity(), 32);
    }

    #[test]
    fn configure_pass_sets_range_and_resets() {
        let mut slice = Slice::new(&small_config());
        slice.configure_pass(64, 20);
        assert_eq!(slice.assigned_range(), 64..84);
    }

    #[test]
    #[should_panic(expected = "exceeds slice capacity")]
    fn oversized_pass_panics() {
        let mut slice = Slice::new(&small_config());
        slice.configure_pass(0, 33);
    }

    #[test]
    fn update_routes_contributions_to_the_right_cluster() {
        let mut slice = Slice::new(&small_config());
        slice.configure_pass(0, 32);
        let contributions = [
            Contribution {
                neuron: 0,
                weight: 3,
            },
            Contribution {
                neuron: 9,
                weight: 4,
            }, // cluster 1, neuron 1
            Contribution {
                neuron: 31,
                weight: -2,
            }, // cluster 3, neuron 7
        ];
        let outcome = slice.process_update(&contributions, PARAMS, true);
        assert_eq!(outcome.synaptic_ops, 3);
        assert_eq!(outcome.active_clusters, 3);
        assert_eq!(outcome.gated_clusters, 1);
        assert_eq!(slice.synaptic_ops(), 3);
    }

    #[test]
    fn update_respects_base_offset() {
        let mut slice = Slice::new(&small_config());
        slice.configure_pass(100, 32);
        let contributions = [Contribution {
            neuron: 100,
            weight: 7,
        }];
        let outcome = slice.process_update(&contributions, PARAMS, true);
        assert_eq!(outcome.synaptic_ops, 1);
        // Neuron 100 maps to cluster 0, local neuron 0; it should fire.
        let fire = slice.process_fire(PARAMS, true);
        assert_eq!(fire.fired, vec![100]);
    }

    #[test]
    fn clock_gating_off_activates_every_cluster() {
        let mut slice = Slice::new(&small_config());
        slice.configure_pass(0, 32);
        let contributions = [Contribution {
            neuron: 0,
            weight: 1,
        }];
        let outcome = slice.process_update(&contributions, PARAMS, false);
        assert_eq!(outcome.active_clusters, 4);
        assert_eq!(outcome.gated_clusters, 0);
    }

    #[test]
    fn exported_state_resumes_on_a_fresh_slice() {
        let mut slice = Slice::new(&small_config());
        slice.configure_pass(0, 32);
        let _ = slice.process_update(
            &[Contribution {
                neuron: 9,
                weight: 4,
            }],
            PARAMS,
            true,
        );
        let mut saved = vec![ClusterState::resting(8); 4];
        slice.export_state(&mut saved);

        let mut resumed = Slice::new(&small_config());
        resumed.configure_pass(0, 32);
        resumed.import_state(&saved);
        // One more contribution pushes neuron 9 over the threshold on both.
        for s in [&mut slice, &mut resumed] {
            let _ = s.process_update(
                &[Contribution {
                    neuron: 9,
                    weight: 2,
                }],
                PARAMS,
                true,
            );
        }
        assert_eq!(
            slice.process_fire(PARAMS, true).fired,
            resumed.process_fire(PARAMS, true).fired
        );
    }

    #[test]
    fn fire_reports_scanned_and_skipped_clusters() {
        let mut slice = Slice::new(&small_config());
        slice.configure_pass(0, 32);
        // Only cluster 0 receives an update.
        let _ = slice.process_update(
            &[Contribution {
                neuron: 0,
                weight: 7,
            }],
            PARAMS,
            true,
        );
        let fire = slice.process_fire(PARAMS, true);
        assert_eq!(fire.fired, vec![0]);
        assert_eq!(fire.scanned_clusters, 1);
        assert_eq!(fire.skipped_clusters, 3);
        // Without TLU every cluster scans.
        let fire = slice.process_fire(PARAMS, false);
        assert_eq!(fire.scanned_clusters, 4);
    }
}

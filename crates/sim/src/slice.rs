//! The Slice: 16 clusters orchestrated by a sequencer.
//!
//! A slice receives the input event stream (all clusters see the same event,
//! paper §III-D.4), filters it against the addresses of the neurons it
//! implements, shifts the addresses relative to each cluster's base and
//! dispatches the state updates to the clusters. Output spikes are pushed
//! into per-cluster FIFOs and drained by the slice collector.
//!
//! # Structure-of-arrays membrane arena
//!
//! Since DESIGN.md §12 the membrane states of **all** clusters live in one
//! contiguous per-slice `Vec<i16>` (the *arena*), indexed by
//! `cluster_index * neurons_per_cluster + neuron_index` — i.e. by the
//! slice-local neuron address itself. A contiguous neuron span therefore is
//! a single contiguous `i16` stride regardless of how many cluster
//! boundaries it crosses, which is the shape the blocked
//! [`Kernel`] needs. The per-cluster TLU bookkeeping
//! (pending leaks, dirty flag, membrane bound, counters) stays in
//! [`Cluster`]; every state-touching cluster call receives its arena
//! segment explicitly. The arena carries [`BLOCK_LANES`] lanes of zeroed
//! padding behind the last cluster so the blocked kernel's full-vector tail
//! step is always in bounds.

use serde::{Deserialize, Serialize};

use crate::cluster::{Cluster, ClusterState};
use crate::config::SneConfig;
use crate::mapping::{Contribution, LifHardwareParams};
use crate::plan::EventRow;
use crate::simd::{Kernel, BLOCK_LANES, LANE_FLOOR};

/// Statistics of one `UPDATE_OP` processed by a slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UpdateOutcome {
    /// Synaptic operations performed by this slice for the event.
    pub synaptic_ops: u64,
    /// Clusters that were active during the event window.
    pub active_clusters: u64,
    /// Clusters that were clock-gated during the event window.
    pub gated_clusters: u64,
}

/// Statistics of one `FIRE_OP` processed by a slice (test-only companion of
/// the allocation-free [`Slice::process_fire_into`]).
#[cfg(test)]
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FireOutcome {
    /// Global output-neuron indices that fired, in cluster/TDM order.
    pub fired: Vec<usize>,
    /// Clusters that executed the scan.
    pub scanned_clusters: u64,
    /// Clusters that skipped the scan thanks to the TLU.
    pub skipped_clusters: u64,
}

/// Scan/skip accounting of one `FIRE_OP` (the fired neurons are appended to
/// a caller-provided buffer by [`Slice::process_fire_into`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FireScanSummary {
    /// Clusters that executed the scan.
    pub scanned_clusters: u64,
    /// Clusters that skipped the scan thanks to the TLU.
    pub skipped_clusters: u64,
}

/// Reusable per-block cluster-window scratch of the fused compiled datapath
/// ([`Slice::process_update_block_planned`]): one slot per cluster holding
/// the window's per-lane running maximum and tap count, validity-tagged by a
/// monotonically increasing block mark so no per-block clearing walk is
/// needed. Pure scratch — its contents between calls carry no meaning, so it
/// lives with the worker's reusable buffers, not in the slice's persisted
/// state.
#[derive(Debug, Clone, Default)]
pub struct WindowScratch {
    /// Mark of the block currently (or last) using each slot.
    mark: Vec<u32>,
    /// Per-lane running membrane maxima of each cluster's open window.
    lanes: Vec<[i16; BLOCK_LANES]>,
    /// Synaptic taps accumulated into each cluster's open window.
    taps: Vec<u64>,
    /// Indices of the clusters the current block opened a window on, so
    /// the block-end close loop visits exactly those (at sparse activity a
    /// block touches one or two clusters, not the whole slice).
    touched: Vec<u32>,
    /// Mark of the current block (wraps; wrap resets every slot's mark).
    block: u32,
}

/// One slice of the engine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Slice {
    clusters: Vec<Cluster>,
    /// The membrane arena: every cluster's states back to back, indexed by
    /// slice-local neuron address, plus [`BLOCK_LANES`] lanes of padding
    /// (always zero) so the blocked kernel's tail step has room.
    membranes: Vec<i16>,
    /// Which membrane kernel runs the span/scan hot paths. Host-time choice
    /// only: every kernel is bit-exact (the scalar one is the oracle).
    kernel: Kernel,
    neurons_per_cluster: usize,
    /// `log2(neurons_per_cluster)` when it is a power of two (the paper's 64
    /// and every test geometry): the hot path then maps neuron → cluster
    /// with a shift instead of an integer division.
    cluster_shift: Option<u32>,
    /// Global output-neuron index of the first neuron mapped on this slice.
    base: usize,
    /// Number of output neurons mapped on this slice in the current pass.
    assigned: usize,
    /// Per-cluster epoch of the last event window that touched it, against
    /// [`Slice::epoch`]: the per-event cluster activity bookkeeping without
    /// any per-event clearing (and without per-event allocation).
    touch_epoch: Vec<u32>,
    /// Epoch of the current event window.
    epoch: u32,
    /// Number of dirty clusters (updated since their last executed fire
    /// scan), maintained at every dirty-flag transition so
    /// [`Slice::all_clusters_clean`] and the all-skip `FIRE_OP` fast path
    /// are one compare instead of a strided walk over every cluster.
    #[serde(default)]
    dirty_count: u32,
    /// Number of TLU-armed `FIRE_OP`s this slice processed. A clean
    /// cluster's skip at such a fire is **not posted** to the cluster —
    /// the cluster is simply left behind this epoch, and the skips it owes
    /// ([`Cluster::sync_skips`]) materialize right before its next
    /// per-cluster observation (update integration, executed scan, state
    /// export). A skipped fire therefore costs one increment here plus a
    /// read-only dirty check per cluster — no read-modify-write traffic
    /// across the cluster array — while every observable state stays
    /// bit-identical to eager per-cluster bookkeeping.
    #[serde(default)]
    fire_epoch: u64,
}

impl Slice {
    /// Creates a slice with the cluster geometry of `config`, running the
    /// host-default membrane kernel (see [`Kernel::auto`]).
    #[must_use]
    pub fn new(config: &SneConfig) -> Self {
        let clusters: Vec<Cluster> = (0..config.clusters_per_slice)
            .map(|_| Cluster::new(config.neurons_per_cluster))
            .collect();
        let capacity = config.clusters_per_slice * config.neurons_per_cluster;
        Self {
            clusters,
            membranes: vec![0; capacity + BLOCK_LANES],
            kernel: Kernel::auto(),
            neurons_per_cluster: config.neurons_per_cluster,
            cluster_shift: config
                .neurons_per_cluster
                .is_power_of_two()
                .then(|| config.neurons_per_cluster.trailing_zeros()),
            base: 0,
            assigned: 0,
            touch_epoch: vec![0; config.clusters_per_slice],
            epoch: 0,
            dirty_count: 0,
            fire_epoch: 0,
        }
    }

    /// The membrane kernel this slice runs.
    #[must_use]
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Selects the membrane kernel (bit-exact either way; host time only).
    pub fn set_kernel(&mut self, kernel: Kernel) {
        self.kernel = kernel;
    }

    /// Starts a new event window and returns its epoch (every cluster's
    /// touch mark is older by construction).
    #[inline]
    fn next_epoch(&mut self) -> u32 {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped after 2^32 event windows: restart the epoch space.
            self.touch_epoch.iter_mut().for_each(|e| *e = 0);
            self.epoch = 1;
        }
        self.epoch
    }

    /// Number of clusters.
    #[must_use]
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Maximum number of neurons the slice can implement.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.clusters.len() * self.neurons_per_cluster
    }

    /// Global output-neuron range currently mapped on this slice.
    #[must_use]
    pub fn assigned_range(&self) -> std::ops::Range<usize> {
        self.base..self.base + self.assigned
    }

    /// Configures the slice for a mapping pass: neurons
    /// `[base, base + count)` of the layer are implemented here. All neuron
    /// state is reset.
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds the slice capacity.
    pub fn configure_pass(&mut self, base: usize, count: usize) {
        self.configure_pass_for_resume(base, count);
        self.reset();
    }

    /// Configures the slice for a mapping pass **without** resetting neuron
    /// state: the caller is about to [`Slice::import_state`] a full snapshot
    /// (every cluster's membranes and TLU bookkeeping), which overwrites the
    /// state wholesale — the reset walk in between would be pure overhead.
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds the slice capacity.
    pub fn configure_pass_for_resume(&mut self, base: usize, count: usize) {
        assert!(
            count <= self.capacity(),
            "pass assignment exceeds slice capacity"
        );
        self.base = base;
        self.assigned = count;
    }

    /// Resets all neuron state (`RST_OP`): one pass over the arena plus the
    /// per-cluster bookkeeping.
    pub fn reset(&mut self) {
        self.membranes.fill(0);
        for cluster in &mut self.clusters {
            cluster.reset_bookkeeping();
        }
        self.dirty_count = 0;
        self.fire_epoch = 0;
    }

    /// Snapshots the architectural state of every cluster into `out`
    /// (one [`ClusterState`] per cluster, in cluster order).
    ///
    /// # Panics
    ///
    /// Panics if `out` does not hold exactly one slot per cluster.
    pub fn export_state(&self, out: &mut [ClusterState]) {
        assert_eq!(out.len(), self.clusters.len(), "cluster slot mismatch");
        let npc = self.neurons_per_cluster;
        for (i, (cluster, slot)) in self.clusters.iter().zip(out.iter_mut()).enumerate() {
            cluster.snapshot_into(&self.membranes[i * npc..(i + 1) * npc], slot);
            // Fold the not-yet-posted fire-scan skips into the snapshot:
            // the exported state is the synced (eager-bookkeeping) state.
            slot.pending_leak_steps += cluster.owed_skips(self.fire_epoch);
        }
    }

    /// Restores the architectural state of every cluster from `states`.
    ///
    /// # Panics
    ///
    /// Panics if `states` does not hold exactly one snapshot per cluster or
    /// a snapshot has the wrong neuron count.
    pub fn import_state(&mut self, states: &[ClusterState]) {
        assert_eq!(states.len(), self.clusters.len(), "cluster slot mismatch");
        let npc = self.neurons_per_cluster;
        for (i, (cluster, state)) in self.clusters.iter_mut().zip(states).enumerate() {
            cluster.restore(&mut self.membranes[i * npc..(i + 1) * npc], state);
            // The imported snapshot is a synced state (export folds the
            // owed skips in), so nothing is owed anymore.
            cluster.mark_scanned(0);
        }
        self.fire_epoch = 0;
        self.dirty_count = states.iter().filter(|s| s.dirty).count() as u32;
    }

    /// Processes one `UPDATE_OP`: the contributions (already filtered to this
    /// slice's range by the address filter) are dispatched to the clusters,
    /// one [`Cluster::integrate`] call per synapse.
    ///
    /// This is the **naive reference datapath** — the per-synapse dispatch
    /// the compiled plan's batched window form
    /// ([`Slice::process_update_planned`]) is measured against and must
    /// reproduce bit-exactly. It is always scalar (the kernel choice only
    /// affects the planned spans and the fire scans).
    pub fn process_update(
        &mut self,
        contributions: &[Contribution],
        params: LifHardwareParams,
        clock_gating: bool,
    ) -> UpdateOutcome {
        let epoch = self.next_epoch();
        let range = self.assigned_range();
        let base = self.base;
        let npc = self.neurons_per_cluster;
        let shift = self.cluster_shift;
        let fire_epoch = self.fire_epoch;
        let clusters = &mut self.clusters[..];
        let membranes = &mut self.membranes[..];
        let touch_epoch = &mut self.touch_epoch[..];
        let mut dirty_count = self.dirty_count;
        let mut active = 0u64;
        for c in contributions {
            debug_assert!(range.contains(&c.neuron));
            let local = c.neuron - base;
            let cluster_index = match shift {
                Some(shift) => local >> shift,
                None => local / npc,
            };
            let cluster_start = cluster_index * npc;
            let cluster = &mut clusters[cluster_index];
            cluster.sync_skips(fire_epoch);
            dirty_count += u32::from(!cluster.is_dirty());
            cluster.integrate(
                &mut membranes[cluster_start..cluster_start + npc],
                local - cluster_start,
                c.weight,
                params,
            );
            if touch_epoch[cluster_index] != epoch {
                touch_epoch[cluster_index] = epoch;
                active += 1;
            }
        }
        self.dirty_count = dirty_count;
        let gated = if clock_gating {
            self.clusters.len() as u64 - active
        } else {
            // Without clock gating every cluster toggles during the event window.
            0
        };
        let active = if clock_gating {
            active
        } else {
            self.clusters.len() as u64
        };
        UpdateOutcome {
            synaptic_ops: contributions.len() as u64,
            active_clusters: active,
            gated_clusters: gated,
        }
    }

    /// The fused compiled datapath, block form: applies a run of consecutive
    /// `UPDATE_OP` event rows (resolved once per run by the engine against
    /// the compiled [`crate::plan::LayerPlan`]) and integrates their
    /// contributions **in place**, without materializing contribution lists.
    /// The borrow splitting and geometry setup happen once per block, not
    /// once per event — the op streams between `FIRE_OP` barriers are
    /// exactly such runs.
    ///
    /// Exploits the table structure the naive path does not have: weights
    /// are pre-resolved, each (output channel, kernel row) is one contiguous
    /// neuron span — a contiguous arena stride accumulated by the slice's
    /// [`Kernel`] — and every cluster's open/close (catch-up, dirty,
    /// counters) window round trip runs **once per block**, not once per
    /// event. That is exact because between the events of a block no
    /// observation point intervenes: the cluster's catch-up is idempotent
    /// while no `FIRE_OP` accrues pending leak, the dirty flag is only read
    /// at the fire barrier that ends the block, and the committed membrane
    /// bound is a running maximum — the maximum over the block's per-event
    /// maxima is bit-identical to chaining one close per event (which is in
    /// turn the naive oracle's running maximum over every written state).
    /// The bound stays **exact**, never an overestimate: it decides
    /// fire-scan walk elision, which the persisted TLU state can observe.
    ///
    /// Pushes one synaptic-ops entry per event into `update_ops` and returns
    /// the **aggregated** outcome of the block. Bit-identical to resolving
    /// every event through
    /// [`LayerPlan::contributions_in_range_into`][crate::plan::LayerPlan::contributions_in_range_into]
    /// and dispatching via [`Slice::process_update`]: same states, same
    /// counters, same totals (within one event window each neuron receives
    /// at most one contribution, so apply order cannot matter).
    pub fn process_update_block_planned(
        &mut self,
        rows: &[EventRow<'_>],
        params: LifHardwareParams,
        clock_gating: bool,
        update_ops: &mut Vec<u64>,
        scratch: &mut WindowScratch,
    ) -> UpdateOutcome {
        let range = self.assigned_range();
        // Split the borrows and copy the geometry into locals once per
        // block: the cluster calls below take `&mut` into `clusters`, and
        // without the split the compiler must re-load every `self` field per
        // iteration (it cannot prove the calls leave them untouched).
        let base = self.base;
        let npc = self.neurons_per_cluster;
        let shift = self.cluster_shift;
        let kernel = self.kernel;
        let num_clusters = self.clusters.len() as u64;
        let fire_epoch = self.fire_epoch;
        let mut epoch = self.epoch;
        let clusters = &mut self.clusters[..];
        let membranes = &mut self.membranes[..];
        let touch_epoch = &mut self.touch_epoch[..];
        let cluster_of = |local: usize| match shift {
            Some(shift) => local >> shift,
            None => local / npc,
        };
        // The output-channel window of the slice range is a per-layer
        // constant (every row of a block belongs to the same layer), so the
        // two divisions behind it run once per block, not once per event.
        // `(first output channel, last output channel, clamped range end)`,
        // with `first > last` encoding an empty intersection.
        let mut conv_channels: Option<(usize, usize, usize)> = None;
        let nclusters = clusters.len();
        if scratch.mark.len() != nclusters {
            scratch.mark.clear();
            scratch.mark.resize(nclusters, 0);
            scratch.lanes.resize(nclusters, LANE_FLOOR);
            scratch.taps.resize(nclusters, 0);
            scratch.block = 0;
        }
        scratch.block = scratch.block.wrapping_add(1);
        if scratch.block == 0 {
            // Wrapped after 2^32 blocks: restart the block-mark space.
            scratch.mark.iter_mut().for_each(|m| *m = 0);
            scratch.block = 1;
        }
        let block = scratch.block;
        // Pin every per-cluster array to exactly `nclusters` entries and
        // clamp the computed cluster index below: together they let the
        // compiler drop the bounds check from all five per-segment indexings
        // of the hot walk (the clamp is dead — a span can only land inside
        // the arena — but it is one `min` the optimizer can see).
        let clusters = &mut clusters[..nclusters];
        let touch_epoch = &mut touch_epoch[..nclusters];
        let mark = &mut scratch.mark[..nclusters];
        let lanes = &mut scratch.lanes[..nclusters];
        let taps = &mut scratch.taps[..nclusters];
        let touched = &mut scratch.touched;
        touched.clear();
        let cluster_clamp = nclusters - 1;
        let mut dirty_count = self.dirty_count;
        let mut aggregate = UpdateOutcome::default();
        for row in rows {
            epoch = epoch.wrapping_add(1);
            if epoch == 0 {
                // Wrapped after 2^32 event windows: restart the epoch space.
                touch_epoch.iter_mut().for_each(|e| *e = 0);
                epoch = 1;
            }
            let mut active = 0u64;
            let mut ops = 0u64;
            match *row {
                EventRow::Conv {
                    row_offsets,
                    weight_starts,
                    weights: pool,
                    rows_per_oc,
                    taps_per_row,
                    event_base,
                    plane,
                    total_neurons,
                } => {
                    // Only the output channels whose planes intersect the
                    // range can contribute (the address filter).
                    let (first_oc, last_oc, end) = *conv_channels.get_or_insert_with(|| {
                        let end = range.end.min(total_neurons);
                        if range.start < end {
                            (range.start / plane, (end - 1) / plane, end)
                        } else {
                            (1, 0, end)
                        }
                    });
                    if first_oc <= last_oc {
                        let first_span = first_oc * rows_per_oc;
                        let last_span = (last_oc + 1) * rows_per_oc;
                        let offsets = &row_offsets[first_span..last_span];
                        let starts = &weight_starts[first_span..last_span];
                        for (&offset, &start) in offsets.iter().zip(starts) {
                            let lowest = (event_base + i64::from(offset)) as usize;
                            // Clip the contiguous span to the slice range
                            // (a no-op for fully covered planes).
                            let lo = lowest.max(range.start);
                            let hi = (lowest + taps_per_row).min(end);
                            if lo >= hi {
                                continue;
                            }
                            // Open-ended weight slice (to the pool's padded
                            // end): the kernel's masked vector step can then
                            // always load a full weight vector.
                            let weights = &pool[start as usize + (lo - lowest)..];
                            let mut span_len = hi - lo;
                            let mut woff = 0usize;
                            let mut local = lo - base;
                            loop {
                                let cluster_index = cluster_of(local).min(cluster_clamp);
                                let cluster_start = cluster_index * npc;
                                let take = span_len.min(cluster_start + npc - local);
                                if mark[cluster_index] != block {
                                    mark[cluster_index] = block;
                                    lanes[cluster_index] = LANE_FLOOR;
                                    taps[cluster_index] = 0;
                                    touched.push(cluster_index as u32);
                                    let cluster = &mut clusters[cluster_index];
                                    cluster.sync_skips(fire_epoch);
                                    dirty_count += u32::from(!cluster.is_dirty());
                                    let seg = &mut membranes[cluster_start..cluster_start + npc];
                                    cluster.open_window(seg, params, kernel);
                                }
                                if touch_epoch[cluster_index] != epoch {
                                    touch_epoch[cluster_index] = epoch;
                                    active += 1;
                                }
                                kernel.accumulate_span_max(
                                    membranes,
                                    local,
                                    &weights[woff..],
                                    take,
                                    &mut lanes[cluster_index],
                                );
                                taps[cluster_index] += take as u64;
                                ops += take as u64;
                                span_len -= take;
                                if span_len == 0 {
                                    break;
                                }
                                local += take;
                                woff += take;
                            }
                        }
                    }
                }
                EventRow::Dense { weights, outputs } => {
                    // Dense outputs are contiguous: walk whole clusters.
                    let end = range.end.min(outputs);
                    let mut o = range.start.min(end);
                    while o < end {
                        let local = o - base;
                        let cluster_index = cluster_of(local).min(cluster_clamp);
                        let cluster_start = cluster_index * npc;
                        let run_end = end.min(base + cluster_start + npc);
                        if mark[cluster_index] != block {
                            mark[cluster_index] = block;
                            lanes[cluster_index] = LANE_FLOOR;
                            taps[cluster_index] = 0;
                            touched.push(cluster_index as u32);
                            let cluster = &mut clusters[cluster_index];
                            cluster.sync_skips(fire_epoch);
                            dirty_count += u32::from(!cluster.is_dirty());
                            let seg = &mut membranes[cluster_start..cluster_start + npc];
                            cluster.open_window(seg, params, kernel);
                        }
                        if touch_epoch[cluster_index] != epoch {
                            touch_epoch[cluster_index] = epoch;
                            active += 1;
                        }
                        kernel.accumulate_span_max(
                            membranes,
                            local,
                            &weights[o..],
                            run_end - o,
                            &mut lanes[cluster_index],
                        );
                        taps[cluster_index] += (run_end - o) as u64;
                        ops += (run_end - o) as u64;
                        o = run_end;
                    }
                }
            }
            update_ops.push(ops);
            aggregate.synaptic_ops += ops;
            if clock_gating {
                aggregate.active_clusters += active;
                aggregate.gated_clusters += num_clusters - active;
            } else {
                // Without clock gating every cluster toggles per window.
                aggregate.active_clusters += num_clusters;
            }
        }
        // One close per cluster the block touched: commits the exact
        // block-wide membrane maximum (the horizontal lane reduction runs
        // once per cluster per block, never per span or per event), the
        // dirty flag and the tap counter in a single window round trip.
        // The touched list holds each opened cluster exactly once (guarded
        // by the block mark), so the close loop never walks the slice.
        for &cluster_index in touched.iter() {
            let cluster_index = cluster_index as usize;
            debug_assert_eq!(mark[cluster_index], block);
            clusters[cluster_index].close_window(
                kernel.reduce_lane_max(&lanes[cluster_index]),
                taps[cluster_index],
            );
        }
        self.epoch = epoch;
        self.dirty_count = dirty_count;
        aggregate
    }

    /// Single-event convenience form of
    /// [`Slice::process_update_block_planned`] (the engine's worker uses the
    /// block form; this one backs tests and microbenchmarks).
    pub fn process_update_planned(
        &mut self,
        row: EventRow<'_>,
        params: LifHardwareParams,
        clock_gating: bool,
    ) -> UpdateOutcome {
        let mut update_ops = Vec::with_capacity(1);
        self.process_update_block_planned(
            std::slice::from_ref(&row),
            params,
            clock_gating,
            &mut update_ops,
            &mut WindowScratch::default(),
        )
    }

    /// Processes one `FIRE_OP`: every cluster scans its TDM neurons and emits
    /// spikes for those above threshold. Returns global neuron indices.
    ///
    /// Test-only convenience: it allocates per call, so the public API is
    /// the allocation-free [`Slice::process_fire_into`], which the engine's
    /// hot path uses exclusively.
    #[cfg(test)]
    pub fn process_fire(&mut self, params: LifHardwareParams, tlu_enabled: bool) -> FireOutcome {
        let mut fired = Vec::new();
        let summary = self.process_fire_into(params, tlu_enabled, &mut fired);
        FireOutcome {
            fired,
            scanned_clusters: summary.scanned_clusters,
            skipped_clusters: summary.skipped_clusters,
        }
    }

    /// Processes one `FIRE_OP`: every cluster scans its TDM neurons and the
    /// global indices of firing neurons are appended to `out` (not cleared
    /// first), so the engine's per-slice workers reuse one buffer per slice
    /// across the run.
    pub fn process_fire_into(
        &mut self,
        params: LifHardwareParams,
        tlu_enabled: bool,
        out: &mut Vec<usize>,
    ) -> FireScanSummary {
        // This op's post-fire epoch: skips are deferred by *not* advancing
        // a clean cluster to it (the owed skips materialize at the
        // cluster's next per-cluster observation, see `Slice::fire_epoch`),
        // executed scans advance their cluster past it explicitly.
        let next_epoch = self.fire_epoch + u64::from(tlu_enabled);
        // The all-clean fast path: when no cluster was updated since its
        // last scan, this `FIRE_OP` is a TLU skip for every one of them —
        // one compare and one increment, no cluster is touched at all. In
        // the steady state of sparse workloads most slices take this path
        // on most timesteps — it is what keeps the host-time floor of a
        // run event-bound instead of timestep-bound.
        if tlu_enabled && self.dirty_count == 0 {
            self.fire_epoch = next_epoch;
            return FireScanSummary {
                scanned_clusters: 0,
                skipped_clusters: self.clusters.len() as u64,
            };
        }
        let npc = self.neurons_per_cluster;
        let kernel = self.kernel;
        let fire_epoch = self.fire_epoch;
        let membranes = &mut self.membranes[..];
        let mut dirty_count = self.dirty_count;
        let mut summary = FireScanSummary::default();
        for (cluster_index, cluster) in self.clusters.iter_mut().enumerate() {
            // The TLU skip decision hoisted out of [`Cluster::fire_scan_into`]:
            // a clean cluster's skip is deferred entirely — this branch is a
            // read-only load of the dirty flag, so the skip costs no
            // read-modify-write traffic and no arena machinery.
            let was_dirty = cluster.is_dirty();
            if tlu_enabled && !was_dirty {
                summary.skipped_clusters += 1;
                continue;
            }
            // An executing scan observes the cluster: settle any owed skips
            // first (a dirty cluster synced when the update arrived, so
            // this is one compare), then mark the scan as executed.
            cluster.sync_skips(fire_epoch);
            // Bound elision resolved before the walk machinery: a dirty
            // cluster whose membrane bound proves no spike is possible costs
            // one compare and three counter bumps, no arena segmentation.
            if cluster.scan_elides(params) {
                cluster.mark_scanned(next_epoch);
                dirty_count -= u32::from(was_dirty);
                summary.scanned_clusters += 1;
                continue;
            }
            let cluster_base = self.base + cluster_index * npc;
            let cluster_start = cluster_index * npc;
            let local_start = out.len();
            cluster.scan_walk(
                &mut membranes[cluster_start..cluster_start + npc],
                params,
                kernel,
                out,
            );
            cluster.mark_scanned(next_epoch);
            dirty_count -= u32::from(was_dirty);
            summary.scanned_clusters += 1;
            // Shift the appended local indices to global addresses, dropping
            // neurons beyond the assigned range: they are architectural
            // padding (the last cluster of a pass may be partially used) and
            // can never have received a contribution, so they never fire,
            // but guard anyway.
            let mut write = local_start;
            for read in local_start..out.len() {
                let global = cluster_base + out[read];
                if global < self.base + self.assigned {
                    out[write] = global;
                    write += 1;
                }
            }
            out.truncate(write);
        }
        self.dirty_count = dirty_count;
        self.fire_epoch = next_epoch;
        summary
    }

    /// Whether every cluster is clean (no update since its last executed
    /// fire scan), i.e. the next `FIRE_OP` would TLU-skip all of them. One
    /// compare against the maintained dirty-cluster count — the worker's
    /// all-fire-tail fast-forward gates on this per remaining op.
    #[must_use]
    pub fn all_clusters_clean(&self) -> bool {
        debug_assert_eq!(
            self.dirty_count as usize,
            self.clusters.iter().filter(|c| c.is_dirty()).count(),
            "slice dirty-cluster count out of sync"
        );
        self.dirty_count == 0
    }

    /// Applies the TLU skip bookkeeping of `n` consecutive `FIRE_OP`s to
    /// every cluster at once — bit-identical to `n` calls of
    /// [`Slice::process_fire_into`] on a slice whose clusters are all clean
    /// (each such call is a skip for every cluster and fires nothing). Only
    /// valid while [`Slice::all_clusters_clean`] holds; skips keep every
    /// cluster clean, so one check covers all `n` — and the skips are
    /// deferred via the fire epoch, making the whole batch O(1).
    pub fn note_skipped_fires(&mut self, n: u32) {
        debug_assert!(self.all_clusters_clean());
        self.fire_epoch += u64::from(n);
    }

    /// Total synaptic operations performed by this slice's clusters.
    #[must_use]
    pub fn synaptic_ops(&self) -> u64 {
        self.clusters
            .iter()
            .map(|c| c.counters().synaptic_ops)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::Contribution;

    fn small_config() -> SneConfig {
        SneConfig {
            clusters_per_slice: 4,
            neurons_per_cluster: 8,
            ..SneConfig::default()
        }
    }

    const PARAMS: LifHardwareParams = LifHardwareParams {
        leak: 0,
        threshold: 5,
    };

    #[test]
    fn capacity_is_clusters_times_neurons() {
        let slice = Slice::new(&small_config());
        assert_eq!(slice.num_clusters(), 4);
        assert_eq!(slice.capacity(), 32);
    }

    #[test]
    fn configure_pass_sets_range_and_resets() {
        let mut slice = Slice::new(&small_config());
        slice.configure_pass(64, 20);
        assert_eq!(slice.assigned_range(), 64..84);
    }

    #[test]
    #[should_panic(expected = "exceeds slice capacity")]
    fn oversized_pass_panics() {
        let mut slice = Slice::new(&small_config());
        slice.configure_pass(0, 33);
    }

    #[test]
    fn update_routes_contributions_to_the_right_cluster() {
        let mut slice = Slice::new(&small_config());
        slice.configure_pass(0, 32);
        let contributions = [
            Contribution {
                neuron: 0,
                weight: 3,
            },
            Contribution {
                neuron: 9,
                weight: 4,
            }, // cluster 1, neuron 1
            Contribution {
                neuron: 31,
                weight: -2,
            }, // cluster 3, neuron 7
        ];
        let outcome = slice.process_update(&contributions, PARAMS, true);
        assert_eq!(outcome.synaptic_ops, 3);
        assert_eq!(outcome.active_clusters, 3);
        assert_eq!(outcome.gated_clusters, 1);
        assert_eq!(slice.synaptic_ops(), 3);
    }

    #[test]
    fn update_respects_base_offset() {
        let mut slice = Slice::new(&small_config());
        slice.configure_pass(100, 32);
        let contributions = [Contribution {
            neuron: 100,
            weight: 7,
        }];
        let outcome = slice.process_update(&contributions, PARAMS, true);
        assert_eq!(outcome.synaptic_ops, 1);
        // Neuron 100 maps to cluster 0, local neuron 0; it should fire.
        let fire = slice.process_fire(PARAMS, true);
        assert_eq!(fire.fired, vec![100]);
    }

    #[test]
    fn clock_gating_off_activates_every_cluster() {
        let mut slice = Slice::new(&small_config());
        slice.configure_pass(0, 32);
        let contributions = [Contribution {
            neuron: 0,
            weight: 1,
        }];
        let outcome = slice.process_update(&contributions, PARAMS, false);
        assert_eq!(outcome.active_clusters, 4);
        assert_eq!(outcome.gated_clusters, 0);
    }

    #[test]
    fn exported_state_resumes_on_a_fresh_slice() {
        let mut slice = Slice::new(&small_config());
        slice.configure_pass(0, 32);
        let _ = slice.process_update(
            &[Contribution {
                neuron: 9,
                weight: 4,
            }],
            PARAMS,
            true,
        );
        let mut saved = vec![ClusterState::resting(8); 4];
        slice.export_state(&mut saved);

        let mut resumed = Slice::new(&small_config());
        // The resume form skips the reset: import_state overwrites
        // everything anyway.
        resumed.configure_pass_for_resume(0, 32);
        resumed.import_state(&saved);
        // One more contribution pushes neuron 9 over the threshold on both.
        for s in [&mut slice, &mut resumed] {
            let _ = s.process_update(
                &[Contribution {
                    neuron: 9,
                    weight: 2,
                }],
                PARAMS,
                true,
            );
        }
        assert_eq!(
            slice.process_fire(PARAMS, true).fired,
            resumed.process_fire(PARAMS, true).fired
        );
    }

    #[test]
    fn fire_reports_scanned_and_skipped_clusters() {
        let mut slice = Slice::new(&small_config());
        slice.configure_pass(0, 32);
        // Only cluster 0 receives an update.
        let _ = slice.process_update(
            &[Contribution {
                neuron: 0,
                weight: 7,
            }],
            PARAMS,
            true,
        );
        let fire = slice.process_fire(PARAMS, true);
        assert_eq!(fire.fired, vec![0]);
        assert_eq!(fire.scanned_clusters, 1);
        assert_eq!(fire.skipped_clusters, 3);
        // Without TLU every cluster scans.
        let fire = slice.process_fire(PARAMS, false);
        assert_eq!(fire.scanned_clusters, 4);
    }

    #[test]
    fn scalar_and_blocked_slices_agree_on_planned_updates() {
        // A dense row that crosses every cluster boundary of the slice,
        // applied via the planned path under both kernels, must leave
        // bit-identical state and fire the same neurons.
        let weights: Vec<i8> = (0..32).map(|i| (i as i8) - 16).collect();
        let mut outcomes = Vec::new();
        let mut states = Vec::new();
        let mut fired = Vec::new();
        for kernel in [Kernel::Scalar, Kernel::Blocked] {
            let mut slice = Slice::new(&small_config());
            slice.set_kernel(kernel);
            assert_eq!(slice.kernel(), kernel);
            slice.configure_pass(0, 32);
            for _ in 0..12 {
                outcomes.push(slice.process_update_planned(
                    EventRow::Dense {
                        weights: &weights,
                        outputs: weights.len(),
                    },
                    PARAMS,
                    true,
                ));
            }
            let mut saved = vec![ClusterState::resting(8); 4];
            slice.export_state(&mut saved);
            states.push(saved);
            fired.push(slice.process_fire(PARAMS, true).fired);
        }
        assert_eq!(outcomes[..12], outcomes[12..]);
        assert_eq!(states[0], states[1]);
        assert_eq!(fired[0], fired[1]);
    }
}

//! The per-slice worker unit of the engine.
//!
//! A mapping pass decomposes into one independent work unit per slice: the
//! [`crate::slice::Slice`] itself, its share of the persistent
//! [`crate::state::LayerState`] and a [`SliceRecord`] capturing everything
//! the slice produced — fired events, per-op synaptic counts, scan decisions
//! and mergeable activity counters. Units share **no mutable state** (the
//! mapping and the operation sequence are read-only), so they can run on any
//! [`crate::exec::ExecStrategy`]; the engine afterwards merges the records in
//! slice order, which reproduces the hardware's crossbar/collector
//! arbitration bit-exactly regardless of the host schedule.
//!
//! The record doubles as the reusable buffer pool of the hot path: all its
//! vectors are cleared, never dropped, so steady-state streaming performs no
//! per-timestep (or even per-run) allocation.

use sne_event::{Event, EventOp};

use crate::cluster::ClusterState;
use crate::mapping::{Contribution, LayerMapping, LifHardwareParams};
use crate::plan::EventRow;
use crate::slice::{Slice, WindowScratch};
use crate::stats::CycleStats;

/// Read-only context shared by every slice worker of a layer run.
#[derive(Debug, Clone, Copy)]
pub struct WorkerContext<'a> {
    /// The layer mapping (address filter + weights).
    pub mapping: &'a LayerMapping,
    /// The event rows of every `UPDATE_OP` in [`WorkerContext::ops`], in op
    /// order, resolved once per run against the compiled layer plan — if the
    /// caller built one (`None` runs the naive reference datapath).
    /// Bit-exact either way.
    pub rows: Option<&'a [EventRow<'a>]>,
    /// The full operation sequence of the run.
    pub ops: &'a [Event],
    /// LIF parameters programmed for the layer.
    pub params: LifHardwareParams,
    /// Whether idle clusters are clock-gated.
    pub clock_gating: bool,
    /// Whether the TLU scan-skip mechanism is enabled.
    pub tlu_enabled: bool,
    /// TDM neurons per cluster (for the skipped-update accounting).
    pub neurons_per_cluster: u64,
    /// Whether the run resumes from previously saved neuron state.
    pub resume: bool,
}

/// One slice's work bundle for one mapping pass: the slice, its output
/// record and its (disjoint) share of the persistent layer state.
#[derive(Debug)]
pub struct SliceTask<'a> {
    /// The slice executing this unit.
    pub slice: &'a mut Slice,
    /// The record the unit fills in.
    pub record: &'a mut SliceRecord,
    /// The slice's cluster slots in the persistent layer state, if the run
    /// is stateful.
    pub state: Option<&'a mut [ClusterState]>,
    /// Global output-neuron index of the slice's first neuron this pass.
    pub base: usize,
    /// Number of output neurons assigned to the slice this pass.
    pub count: usize,
}

/// Everything one slice produced during one mapping pass, in a form the
/// engine can merge deterministically (slice order) after the workers ran.
///
/// All buffers keep their capacity across [`SliceRecord::clear`], so a
/// long-lived engine re-uses them across timesteps, passes and runs.
#[derive(Debug, Clone, Default)]
pub struct SliceRecord {
    /// Whether the slice had neurons assigned this pass (inactive slices
    /// contribute nothing, matching the hardware's address filter).
    pub active: bool,
    /// Output events fired by this slice, flat, in `FIRE_OP` order.
    pub fired: Vec<Event>,
    /// Number of [`SliceRecord::fired`] entries per `FIRE_OP`.
    pub fire_counts: Vec<u32>,
    /// Whether this slice executed the TDM scan, per `FIRE_OP`.
    pub scanned: Vec<bool>,
    /// Synaptic operations performed by this slice, per `UPDATE_OP`.
    pub update_ops: Vec<u64>,
    /// Total synaptic operations of the pass.
    pub synaptic_ops: u64,
    /// Event windows in which a cluster of this slice was active.
    pub active_cluster_windows: u64,
    /// Event windows in which a cluster of this slice was clock-gated.
    pub gated_cluster_windows: u64,
    /// Neuron updates skipped thanks to the TLU mechanism.
    pub tlu_skipped_updates: u64,
    /// Scratch: contributions of the current event (reused, never returned).
    contributions: Vec<Contribution>,
    /// Scratch: fired neuron indices of the current scan (reused).
    fired_neurons: Vec<usize>,
    /// Scratch: the compiled datapath's per-block cluster windows (reused;
    /// self-invalidating via its block mark, so `clear` leaves it alone).
    windows: WindowScratch,
}

impl SliceRecord {
    /// Clears the record for a new pass, keeping every buffer's capacity.
    pub fn clear(&mut self) {
        self.active = false;
        self.fired.clear();
        self.fire_counts.clear();
        self.scanned.clear();
        self.update_ops.clear();
        self.synaptic_ops = 0;
        self.active_cluster_windows = 0;
        self.gated_cluster_windows = 0;
        self.tlu_skipped_updates = 0;
        self.contributions.clear();
        self.fired_neurons.clear();
    }

    /// Merges this record's activity counters into `stats`. Merging is a sum
    /// per counter, so it is associative and independent of the slice order —
    /// the property that makes the parallel fan-out bit-exact.
    pub fn merge_into(&self, stats: &mut CycleStats, cycles_per_event: u64) {
        stats.synaptic_ops += self.synaptic_ops;
        stats.active_cluster_cycles += self.active_cluster_windows * cycles_per_event;
        stats.gated_cluster_cycles += self.gated_cluster_windows * cycles_per_event;
        stats.tlu_skipped_updates += self.tlu_skipped_updates;
    }
}

/// Runs one slice through one mapping pass: configure, (optionally) restore
/// persistent state, consume the full operation sequence, export state.
///
/// This is a pure function of the task and the shared read-only context —
/// the engine's crossbar, collector, trace and cycle accounting are *not*
/// touched here; they belong to the deterministic reduction that follows.
pub fn run_slice_pass(task: &mut SliceTask<'_>, ctx: &WorkerContext<'_>) {
    // A resuming stateful run restores every cluster's membranes and TLU
    // bookkeeping wholesale, so the configure-time reset walk would be dead
    // work — skip it (per-pass counters flow through the record, not the
    // cluster counters, so the outcome is identical).
    match (ctx.resume, task.state.as_deref()) {
        (true, Some(state)) => {
            task.slice.configure_pass_for_resume(task.base, task.count);
            task.slice.import_state(state);
        }
        _ => task.slice.configure_pass(task.base, task.count),
    }
    let record = &mut *task.record;
    record.clear();
    record.active = task.count > 0;
    if record.active {
        // First index of the all-fire tail: every op at or after it is a
        // `FIRE_OP` (== `ops.len()` when the sequence does not end in one).
        // Once the walk reaches it with every cluster clean, the remaining
        // scans are TLU skips for every cluster — and skips keep clusters
        // clean, so the whole tail collapses into one batched bookkeeping
        // step below instead of a per-op, per-cluster walk. This is what
        // holds the host-time floor of a sparse run: passes whose op stream
        // carries no events (every layer past the first, when nothing
        // spikes) fast-forward in O(ops) record pushes.
        let mut tail_fires = ctx.ops.len();
        while tail_fires > 0 && ctx.ops[tail_fires - 1].op == EventOp::Fire {
            tail_fires -= 1;
        }
        let mut update_index = 0usize;
        let mut op_index = 0usize;
        while op_index < ctx.ops.len() {
            if ctx.tlu_enabled && op_index >= tail_fires && task.slice.all_clusters_clean() {
                let fires = (ctx.ops.len() - op_index) as u32;
                task.slice.note_skipped_fires(fires);
                let skipped = task.slice.num_clusters() as u64;
                record.tlu_skipped_updates += u64::from(fires) * skipped * ctx.neurons_per_cluster;
                for _ in 0..fires {
                    record.scanned.push(false);
                    record.fire_counts.push(0);
                }
                break;
            }
            let op = &ctx.ops[op_index];
            match op.op {
                EventOp::Reset => task.slice.reset(),
                EventOp::Update => {
                    // Compiled datapath: the whole run of consecutive
                    // `UPDATE_OP`s (up to the next `FIRE_OP` barrier) goes
                    // through one block-fused span walk over the run-level
                    // resolved rows. Naive datapath (the reference oracle):
                    // materialize each event's contributions, then dispatch
                    // them. Outputs, counters and states are bit-identical.
                    match ctx.rows {
                        Some(rows) => {
                            let mut block_end = op_index + 1;
                            while block_end < ctx.ops.len()
                                && ctx.ops[block_end].op == EventOp::Update
                            {
                                block_end += 1;
                            }
                            let events = block_end - op_index;
                            let outcome = task.slice.process_update_block_planned(
                                &rows[update_index..update_index + events],
                                ctx.params,
                                ctx.clock_gating,
                                &mut record.update_ops,
                                &mut record.windows,
                            );
                            update_index += events;
                            op_index = block_end - 1;
                            record.synaptic_ops += outcome.synaptic_ops;
                            record.active_cluster_windows += outcome.active_clusters;
                            record.gated_cluster_windows += outcome.gated_clusters;
                        }
                        None => {
                            record.contributions.clear();
                            ctx.mapping.contributions_in_range_into(
                                op,
                                task.slice.assigned_range(),
                                &mut record.contributions,
                            );
                            let outcome = task.slice.process_update(
                                &record.contributions,
                                ctx.params,
                                ctx.clock_gating,
                            );
                            update_index += 1;
                            record.update_ops.push(outcome.synaptic_ops);
                            record.synaptic_ops += outcome.synaptic_ops;
                            record.active_cluster_windows += outcome.active_clusters;
                            record.gated_cluster_windows += outcome.gated_clusters;
                        }
                    }
                }
                EventOp::Fire => {
                    record.fired_neurons.clear();
                    let summary = task.slice.process_fire_into(
                        ctx.params,
                        ctx.tlu_enabled,
                        &mut record.fired_neurons,
                    );
                    record.scanned.push(summary.scanned_clusters > 0);
                    record.tlu_skipped_updates +=
                        summary.skipped_clusters * ctx.neurons_per_cluster;
                    let before = record.fired.len();
                    for &neuron in &record.fired_neurons {
                        let (c, y, x) = ctx.mapping.output_position(neuron);
                        record.fired.push(Event::update(op.t, c, x, y));
                    }
                    record
                        .fire_counts
                        .push((record.fired.len() - before) as u32);
                }
            }
            op_index += 1;
        }
    }
    // Persist the state this pass leaves behind (also for inactive slices,
    // whose configure_pass reset them — identical to the sequential engine).
    if let Some(state) = task.state.as_deref_mut() {
        task.slice.export_state(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SneConfig;
    use crate::mapping::MapShape;

    fn small_config() -> SneConfig {
        SneConfig {
            num_slices: 2,
            clusters_per_slice: 4,
            neurons_per_cluster: 8,
            ..SneConfig::default()
        }
    }

    fn mapping() -> LayerMapping {
        LayerMapping::conv(
            MapShape::new(1, 4, 4),
            2,
            3,
            vec![1i8; 18],
            LifHardwareParams {
                leak: 0,
                threshold: 1,
            },
        )
        .unwrap()
    }

    fn op_sequence() -> Vec<Event> {
        let mut stream = sne_event::EventStream::new(4, 4, 1, 2);
        stream.push(Event::update(0, 0, 2, 2)).unwrap();
        stream.to_op_sequence()
    }

    #[test]
    fn worker_fills_a_record_per_op() {
        let config = small_config();
        let mapping = mapping();
        let ops = op_sequence();
        let ctx = WorkerContext {
            mapping: &mapping,
            rows: None,
            ops: &ops,
            params: mapping.params(),
            clock_gating: true,
            tlu_enabled: true,
            neurons_per_cluster: 8,
            resume: false,
        };
        let mut slice = Slice::new(&config);
        let mut record = SliceRecord::default();
        let mut task = SliceTask {
            slice: &mut slice,
            record: &mut record,
            state: None,
            base: 0,
            count: 32,
        };
        run_slice_pass(&mut task, &ctx);
        assert!(record.active);
        // One UPDATE op, two FIRE ops (2 timesteps).
        assert_eq!(record.update_ops.len(), 1);
        assert_eq!(record.fire_counts.len(), 2);
        assert_eq!(record.scanned.len(), 2);
        // The centre spike fires the full receptive field of both channels,
        // but this slice only implements neurons 0..32 (the full layer here).
        assert_eq!(record.fired.len(), 18);
        assert_eq!(record.fire_counts[0], 18);
        assert_eq!(record.fire_counts[1], 0);
        assert_eq!(record.synaptic_ops, 18);
    }

    #[test]
    fn inactive_slices_record_nothing() {
        let config = small_config();
        let mapping = mapping();
        let ops = op_sequence();
        let ctx = WorkerContext {
            mapping: &mapping,
            rows: None,
            ops: &ops,
            params: mapping.params(),
            clock_gating: true,
            tlu_enabled: true,
            neurons_per_cluster: 8,
            resume: false,
        };
        let mut slice = Slice::new(&config);
        let mut record = SliceRecord::default();
        let mut task = SliceTask {
            slice: &mut slice,
            record: &mut record,
            state: None,
            base: 32,
            count: 0,
        };
        run_slice_pass(&mut task, &ctx);
        assert!(!record.active);
        assert!(record.fired.is_empty());
        assert!(record.update_ops.is_empty());
    }

    #[test]
    fn record_merge_is_a_per_counter_sum() {
        let record = SliceRecord {
            active: true,
            synaptic_ops: 5,
            active_cluster_windows: 3,
            gated_cluster_windows: 7,
            tlu_skipped_updates: 11,
            ..SliceRecord::default()
        };
        let mut a = CycleStats::new();
        record.merge_into(&mut a, 48);
        record.merge_into(&mut a, 48);
        let mut b = CycleStats::new();
        record.merge_into(&mut b, 48);
        let mut b2 = CycleStats::new();
        record.merge_into(&mut b2, 48);
        b.merge(&b2);
        assert_eq!(a, b);
        assert_eq!(a.synaptic_ops, 10);
        assert_eq!(a.active_cluster_cycles, 2 * 3 * 48);
    }

    #[test]
    fn clearing_keeps_capacity() {
        let mut record = SliceRecord::default();
        record.fired.reserve(64);
        record.fired.push(Event::update(0, 0, 0, 0));
        let cap = record.fired.capacity();
        record.clear();
        assert!(record.fired.is_empty());
        assert_eq!(record.fired.capacity(), cap);
    }
}

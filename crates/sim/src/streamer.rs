//! Streamer (DMA) engines.
//!
//! Streamers autonomously move events and weights between the external
//! memory and the SNE internal stream fabric (paper §III-D.2). Each streamer
//! performs simple 1-D transfers, converts between the packed memory format
//! and the internal event representation, and buffers words in a 16-entry
//! FIFO that absorbs memory latency.

use std::collections::VecDeque;

use sne_event::{Event, EventError, EventFormat, PackedEvent};

use crate::memory::MemoryModel;

/// Outcome of streaming a full buffer from memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamInResult {
    /// Decoded events in memory order.
    pub events: Vec<Event>,
    /// Memory words read.
    pub words_read: u64,
    /// Cycles the streamer spent waiting on memory beyond the FIFO's ability
    /// to hide the latency.
    pub stall_cycles: u64,
}

/// Outcome of streaming a buffer of events back to memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamOutResult {
    /// Memory words written.
    pub words_written: u64,
    /// Cycles spent waiting on memory.
    pub stall_cycles: u64,
}

/// A DMA engine with an internal event FIFO.
#[derive(Debug, Clone)]
pub struct Streamer {
    format: EventFormat,
    fifo_depth: usize,
    fifo: VecDeque<Event>,
    consume_interval: u32,
}

impl Streamer {
    /// Creates a streamer.
    ///
    /// `consume_interval` is the number of cycles between event consumptions
    /// downstream (48 for the SNE datapath); the FIFO only causes stalls when
    /// the memory cannot sustain one word per interval.
    #[must_use]
    pub fn new(format: EventFormat, fifo_depth: usize, consume_interval: u32) -> Self {
        Self {
            format,
            fifo_depth,
            fifo: VecDeque::with_capacity(fifo_depth),
            consume_interval,
        }
    }

    /// Depth of the internal FIFO in events.
    #[must_use]
    pub fn fifo_depth(&self) -> usize {
        self.fifo_depth
    }

    /// Number of events currently buffered.
    #[must_use]
    pub fn fifo_occupancy(&self) -> usize {
        self.fifo.len()
    }

    /// Streams the whole event buffer out of memory, decoding each word.
    ///
    /// # Errors
    ///
    /// Returns an [`EventError`] if a memory word cannot be decoded (unknown
    /// operation code).
    pub fn stream_in(
        &mut self,
        memory: &mut MemoryModel,
        concurrent_requestors: u32,
    ) -> Result<StreamInResult, EventError> {
        let mut events = Vec::with_capacity(memory.event_count());
        let mut stall_cycles = 0u64;
        let mut words_read = 0u64;
        // The FIFO can prefetch up to `fifo_depth` words; a stall occurs when
        // the per-word memory latency exceeds the downstream consumption
        // interval and the FIFO has drained.
        let mut credit: i64 = (self.fifo_depth as i64) * i64::from(self.consume_interval);
        for index in 0..memory.event_count() {
            let (word, latency) = memory.read(index, concurrent_requestors);
            let Some(word) = word else { break };
            words_read += 1;
            credit += i64::from(self.consume_interval) - i64::from(latency);
            if credit < 0 {
                stall_cycles += (-credit) as u64;
                credit = 0;
            }
            credit = credit.min(self.fifo_depth as i64 * i64::from(self.consume_interval));
            let event = self.format.unpack(word)?;
            self.push_fifo(event);
            events.push(event);
        }
        self.fifo.clear();
        Ok(StreamInResult {
            events,
            words_read,
            stall_cycles,
        })
    }

    /// Streams a buffer of events back to memory, encoding each one.
    ///
    /// # Errors
    ///
    /// Returns an [`EventError`] if an event does not fit the memory format.
    pub fn stream_out(
        &mut self,
        events: &[Event],
        memory: &mut MemoryModel,
        concurrent_requestors: u32,
    ) -> Result<StreamOutResult, EventError> {
        let mut stall_cycles = 0u64;
        let mut words_written = 0u64;
        let mut credit: i64 = self.fifo_depth as i64 * i64::from(self.consume_interval);
        for event in events {
            let word: PackedEvent = self.format.pack(event)?;
            let latency = memory.write(word, concurrent_requestors);
            words_written += 1;
            credit += i64::from(self.consume_interval) - i64::from(latency);
            if credit < 0 {
                stall_cycles += (-credit) as u64;
                credit = 0;
            }
            credit = credit.min(self.fifo_depth as i64 * i64::from(self.consume_interval));
        }
        Ok(StreamOutResult {
            words_written,
            stall_cycles,
        })
    }

    fn push_fifo(&mut self, event: Event) {
        if self.fifo.len() == self.fifo_depth {
            self.fifo.pop_front();
        }
        self.fifo.push_back(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sne_event::EventOp;

    fn packed(events: &[Event]) -> Vec<PackedEvent> {
        EventFormat::default().pack_all(events).unwrap()
    }

    #[test]
    fn stream_in_decodes_every_word_in_order() {
        let events = vec![Event::reset(0), Event::update(0, 1, 2, 3), Event::fire(0)];
        let mut memory = MemoryModel::new(2, 0);
        memory.load_events(packed(&events));
        let mut streamer = Streamer::new(EventFormat::default(), 16, 48);
        let result = streamer.stream_in(&mut memory, 1).unwrap();
        assert_eq!(result.events, events);
        assert_eq!(result.words_read, 3);
        assert_eq!(result.stall_cycles, 0);
    }

    #[test]
    fn slow_memory_with_deep_fifo_does_not_stall() {
        // Latency (40) is below the consumption interval (48): never stalls.
        let events: Vec<Event> = (0..100).map(|t| Event::update(t, 0, 1, 1)).collect();
        let mut memory = MemoryModel::new(40, 0);
        memory.load_events(packed(&events));
        let mut streamer = Streamer::new(EventFormat::default(), 16, 48);
        let result = streamer.stream_in(&mut memory, 1).unwrap();
        assert_eq!(result.stall_cycles, 0);
    }

    #[test]
    fn memory_slower_than_consumption_eventually_stalls() {
        // Latency (60) exceeds the interval (48): after the FIFO's credit is
        // exhausted every extra word costs 12 stall cycles.
        let events: Vec<Event> = (0..200).map(|t| Event::update(t, 0, 1, 1)).collect();
        let mut memory = MemoryModel::new(60, 0);
        memory.load_events(packed(&events));
        let mut streamer = Streamer::new(EventFormat::default(), 16, 48);
        let result = streamer.stream_in(&mut memory, 1).unwrap();
        assert!(result.stall_cycles > 0);
    }

    #[test]
    fn deeper_fifo_hides_more_latency() {
        let events: Vec<Event> = (0..100).map(|t| Event::update(t, 0, 1, 1)).collect();
        let run = |depth: usize| {
            let mut memory = MemoryModel::new(60, 0);
            memory.load_events(packed(&events));
            let mut streamer = Streamer::new(EventFormat::default(), depth, 48);
            streamer.stream_in(&mut memory, 1).unwrap().stall_cycles
        };
        assert!(run(4) >= run(16));
    }

    #[test]
    fn stream_out_writes_all_events() {
        let events = vec![Event::update(3, 0, 5, 6), Event::fire(3)];
        let mut memory = MemoryModel::new(2, 0);
        let mut streamer = Streamer::new(EventFormat::default(), 16, 48);
        let result = streamer.stream_out(&events, &mut memory, 1).unwrap();
        assert_eq!(result.words_written, 2);
        assert_eq!(memory.event_count(), 2);
        // Round-trip back.
        let mut reader = Streamer::new(EventFormat::default(), 16, 48);
        let back = reader.stream_in(&mut memory, 1).unwrap();
        assert_eq!(back.events, events);
    }

    #[test]
    fn stream_out_rejects_unpackable_events() {
        // Timestamp 300 does not fit in the default 8-bit time field.
        let events = vec![Event::new(EventOp::Update, 300, 0, 0, 0)];
        let mut memory = MemoryModel::new(1, 0);
        let mut streamer = Streamer::new(EventFormat::default(), 16, 48);
        assert!(streamer.stream_out(&events, &mut memory, 1).is_err());
    }

    #[test]
    fn fifo_occupancy_is_bounded() {
        let mut streamer = Streamer::new(EventFormat::default(), 4, 48);
        for t in 0..10 {
            streamer.push_fifo(Event::update(t, 0, 0, 0));
        }
        assert_eq!(streamer.fifo_occupancy(), 4);
        assert_eq!(streamer.fifo_depth(), 4);
    }
}

use std::error::Error;
use std::fmt;

/// Errors produced by the hardware simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration parameter is invalid.
    InvalidConfig {
        /// Parameter name.
        name: &'static str,
        /// Explanation of the violated constraint.
        reason: String,
    },
    /// The layer mapping does not fit the configured engine.
    MappingDoesNotFit {
        /// Neurons required by the mapped layer (per pass).
        required_neurons: usize,
        /// Neurons available per slice.
        available_neurons: usize,
    },
    /// The weight buffer of a slice cannot hold the requested weight sets.
    WeightBufferOverflow {
        /// Requested number of weight sets.
        requested: usize,
        /// Capacity of the filter buffer.
        capacity: usize,
    },
    /// An input event does not match the mapped layer geometry.
    EventOutOfRange {
        /// The offending event, rendered for the error message.
        event: String,
        /// Description of the expected geometry.
        expected: String,
    },
    /// A register access used an unknown address.
    UnknownRegister(u32),
    /// The input event stream is not a valid SNE operation sequence.
    MalformedOpSequence(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidConfig { name, reason } => write!(f, "invalid configuration `{name}`: {reason}"),
            Self::MappingDoesNotFit { required_neurons, available_neurons } => write!(
                f,
                "layer needs {required_neurons} neurons per pass but a slice provides {available_neurons}"
            ),
            Self::WeightBufferOverflow { requested, capacity } => {
                write!(f, "weight buffer overflow: {requested} weight sets requested, capacity {capacity}")
            }
            Self::EventOutOfRange { event, expected } => {
                write!(f, "event {event} outside mapped layer geometry ({expected})")
            }
            Self::UnknownRegister(addr) => write!(f, "unknown register address {addr:#x}"),
            Self::MalformedOpSequence(reason) => write!(f, "malformed operation sequence: {reason}"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errors = [
            SimError::InvalidConfig {
                name: "num_slices",
                reason: "must be non-zero".into(),
            },
            SimError::MappingDoesNotFit {
                required_neurons: 2048,
                available_neurons: 1024,
            },
            SimError::WeightBufferOverflow {
                requested: 300,
                capacity: 256,
            },
            SimError::EventOutOfRange {
                event: "(1,2)".into(),
                expected: "32x32".into(),
            },
            SimError::UnknownRegister(0x40),
            SimError::MalformedOpSequence("missing reset".into()),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}

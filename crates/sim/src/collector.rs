//! Output event collector.
//!
//! The collector packs the sparse output streams of the slices (or of the
//! clusters inside one slice) into a single time-synchronized stream toward
//! the crossbar and memory (paper §III-D.3). Because slice activity is
//! sparse, a single output streamer provides more than enough bandwidth; the
//! collector's job is round-robin arbitration.

use serde::{Deserialize, Serialize};
use sne_event::Event;

/// Round-robin arbiter merging several sparse event queues.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Collector {
    num_ports: usize,
    next_port: usize,
    merged_events: u64,
    arbitration_cycles: u64,
}

impl Collector {
    /// Creates a collector with `num_ports` input ports.
    #[must_use]
    pub fn new(num_ports: usize) -> Self {
        Self {
            num_ports,
            next_port: 0,
            merged_events: 0,
            arbitration_cycles: 0,
        }
    }

    /// Number of input ports.
    #[must_use]
    pub fn num_ports(&self) -> usize {
        self.num_ports
    }

    /// Merges per-port event queues into one stream.
    ///
    /// Arbitration is round-robin starting from the port after the last one
    /// served; each granted event costs one arbitration cycle. The input
    /// queues are drained.
    pub fn merge(&mut self, queues: &mut [Vec<Event>]) -> Vec<Event> {
        let views: Vec<&[Event]> = queues.iter().map(Vec::as_slice).collect();
        let total: usize = views.iter().map(|q| q.len()).sum();
        let mut merged = Vec::with_capacity(total);
        self.merge_slices(&views, &mut merged);
        drop(views);
        for queue in queues.iter_mut() {
            queue.clear();
        }
        merged
    }

    /// Merges borrowed per-port event queues, appending the arbitrated stream
    /// to `out` and returning how many events were granted.
    ///
    /// This is the allocation-free variant [`crate::Engine`] uses on its hot
    /// path: the queues are per-slice windows into reusable buffers, and
    /// `out` is the run's output accumulator. The arbitration (round-robin
    /// from the port after the last one served, one cycle per grant) and the
    /// counters are identical to [`Collector::merge`].
    ///
    /// # Panics
    ///
    /// Panics if `queues` does not hold exactly one slice per port.
    pub fn merge_slices(&mut self, queues: &[&[Event]], out: &mut Vec<Event>) -> usize {
        assert_eq!(
            queues.len(),
            self.num_ports,
            "collector port count mismatch"
        );
        let total: usize = queues.iter().map(|q| q.len()).sum();
        out.reserve(total);
        let mut cursors = [0usize; 64];
        let mut cursors_vec;
        let cursors: &mut [usize] = if queues.len() <= cursors.len() {
            &mut cursors[..queues.len()]
        } else {
            cursors_vec = vec![0usize; queues.len()];
            &mut cursors_vec
        };
        let mut granted_total = 0usize;
        while granted_total < total {
            // Visit ports round-robin starting at `next_port`.
            let mut granted = false;
            for offset in 0..self.num_ports {
                let port = (self.next_port + offset) % self.num_ports;
                if cursors[port] < queues[port].len() {
                    out.push(queues[port][cursors[port]]);
                    cursors[port] += 1;
                    granted_total += 1;
                    self.next_port = (port + 1) % self.num_ports;
                    self.merged_events += 1;
                    self.arbitration_cycles += 1;
                    granted = true;
                    break;
                }
            }
            if !granted {
                break;
            }
        }
        granted_total
    }

    /// Total events merged so far.
    #[must_use]
    pub fn merged_events(&self) -> u64 {
        self.merged_events
    }

    /// Total arbitration cycles spent.
    #[must_use]
    pub fn arbitration_cycles(&self) -> u64 {
        self.arbitration_cycles
    }

    /// Clears the counters.
    pub fn reset_counters(&mut self) {
        self.merged_events = 0;
        self.arbitration_cycles = 0;
        self.next_port = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_drains_all_queues() {
        let mut collector = Collector::new(3);
        let mut queues = vec![
            vec![Event::update(0, 0, 0, 0), Event::update(1, 0, 0, 0)],
            vec![Event::update(0, 1, 1, 1)],
            Vec::new(),
        ];
        let merged = collector.merge(&mut queues);
        assert_eq!(merged.len(), 3);
        assert!(queues.iter().all(Vec::is_empty));
        assert_eq!(collector.merged_events(), 3);
        assert_eq!(collector.arbitration_cycles(), 3);
    }

    #[test]
    fn round_robin_interleaves_ports() {
        let mut collector = Collector::new(2);
        let mut queues = vec![
            vec![Event::update(0, 0, 10, 0), Event::update(0, 0, 11, 0)],
            vec![Event::update(0, 1, 20, 0), Event::update(0, 1, 21, 0)],
        ];
        let merged = collector.merge(&mut queues);
        // Starting at port 0, grants alternate 0, 1, 0, 1.
        assert_eq!(merged[0].x, 10);
        assert_eq!(merged[1].x, 20);
        assert_eq!(merged[2].x, 11);
        assert_eq!(merged[3].x, 21);
    }

    #[test]
    fn empty_queues_produce_empty_stream() {
        let mut collector = Collector::new(4);
        let mut queues = vec![Vec::new(); 4];
        assert!(collector.merge(&mut queues).is_empty());
        assert_eq!(collector.merged_events(), 0);
    }

    #[test]
    #[should_panic(expected = "port count mismatch")]
    fn wrong_port_count_panics() {
        let mut collector = Collector::new(2);
        let mut queues = vec![Vec::new()];
        let _ = collector.merge(&mut queues);
    }

    #[test]
    fn merge_slices_matches_merge_and_appends() {
        let queues = [
            vec![Event::update(0, 0, 10, 0), Event::update(0, 0, 11, 0)],
            vec![Event::update(0, 1, 20, 0)],
            Vec::new(),
        ];
        let mut draining = Collector::new(3);
        let mut borrowed = Collector::new(3);
        let expected = draining.merge(&mut queues.clone());
        let views: Vec<&[Event]> = queues.iter().map(Vec::as_slice).collect();
        let mut out = vec![Event::fire(9)]; // pre-existing content is kept
        let granted = borrowed.merge_slices(&views, &mut out);
        assert_eq!(granted, 3);
        assert_eq!(&out[1..], expected.as_slice());
        assert_eq!(borrowed.merged_events(), draining.merged_events());
        assert_eq!(borrowed.arbitration_cycles(), draining.arbitration_cycles());
        // The round-robin pointer advanced identically: a second merge of the
        // same queues interleaves the same way on both collectors.
        let mut out2 = Vec::new();
        borrowed.merge_slices(&views, &mut out2);
        assert_eq!(out2, draining.merge(&mut queues.clone()));
    }

    #[test]
    fn counters_reset() {
        let mut collector = Collector::new(1);
        let mut queues = vec![vec![Event::fire(0)]];
        let _ = collector.merge(&mut queues);
        collector.reset_counters();
        assert_eq!(collector.merged_events(), 0);
        assert_eq!(collector.arbitration_cycles(), 0);
        assert_eq!(collector.num_ports(), 1);
    }
}

//! The Cluster: a time-division-multiplexed LIF datapath.
//!
//! Each Cluster implements 64 TDM neurons with a single combinational LIF
//! datapath (paper §III-D.4): neuron states live in a latch-based,
//! double-buffered memory that sustains one state update per cycle; a
//! time-of-last-update (TLU) register allows the cluster to skip membrane
//! updates across timesteps without input activity; units that are not
//! addressed by the current event are clock-gated.
//!
//! Since the structure-of-arrays refactor (DESIGN.md §12) the membrane
//! memory itself lives in the owning [`crate::slice::Slice`]'s contiguous
//! arena: a `Cluster` carries only the TLU bookkeeping, the host-side
//! membrane bound and the activity counters, and every state-touching
//! method takes its membrane span as an explicit `mem` slice — the
//! cluster's segment of the arena (possibly extended to the arena's end;
//! only the first [`Cluster::neurons`] lanes are this cluster's).

use serde::{Deserialize, Serialize};

use crate::mapping::{Contribution, LifHardwareParams};
use crate::simd::Kernel;

/// Per-cluster activity counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ClusterCounters {
    /// Synaptic operations (membrane accumulations) performed.
    pub synaptic_ops: u64,
    /// Fire scans executed.
    pub fire_scans: u64,
    /// Fire scans skipped thanks to the TLU mechanism.
    pub skipped_scans: u64,
    /// Output spikes emitted.
    pub spikes: u64,
}

/// Snapshot of the architectural state of one cluster: the membrane memory
/// and the TLU bookkeeping, without the activity counters.
///
/// Snapshots are what [`crate::state::LayerState`] stores between engine
/// invocations so neuron state can persist across chunks of a continuous
/// event stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterState {
    /// Membrane states of the TDM neurons.
    pub states: Vec<i16>,
    /// Leak steps deferred by skipped fire scans.
    pub pending_leak_steps: u32,
    /// `true` if an update arrived since the last executed fire scan.
    pub dirty: bool,
}

impl ClusterState {
    /// A resting snapshot for `neurons` TDM neurons (all membranes at zero).
    #[must_use]
    pub fn resting(neurons: usize) -> Self {
        Self {
            states: vec![0; neurons],
            pending_leak_steps: 0,
            dirty: false,
        }
    }

    /// Resets the snapshot to the resting state in place.
    pub fn reset(&mut self) {
        self.states.iter_mut().for_each(|s| *s = 0);
        self.pending_leak_steps = 0;
        self.dirty = false;
    }

    /// Returns `true` if the snapshot equals the resting state.
    #[must_use]
    pub fn is_resting(&self) -> bool {
        self.states.iter().all(|&s| s == 0) && self.pending_leak_steps == 0 && !self.dirty
    }
}

/// One SNE cluster: `neurons` TDM LIF neurons sharing a datapath. The
/// membrane states live in the owning slice's arena (see the module docs);
/// the struct itself is pure bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cluster {
    /// Number of TDM neurons (the length of this cluster's membrane span).
    neurons: usize,
    /// Leak steps accumulated while scans were skipped (TLU lazy catch-up).
    pending_leak_steps: u32,
    /// `true` once an update arrived since the last executed fire scan.
    dirty: bool,
    /// Host-side upper bound on the maximum *stored* membrane state (an
    /// overestimate is fine, an underestimate never happens). Lets a fire
    /// scan prove "no neuron can reach threshold" in O(1) and defer its leak
    /// exactly like a TLU-skipped scan — same outputs, same counters, same
    /// modelled cycles, just no O(neurons) walk. Not architectural state:
    /// it is recomputed on [`Cluster::restore`] and never snapshotted.
    max_bound: i16,
    /// The owning slice's fire epoch (count of TLU-armed `FIRE_OP`s) as of
    /// this cluster's last sync: the difference to the slice's current
    /// epoch is the number of scans this cluster skipped but has not yet
    /// posted to `pending_leak_steps`/`skipped_scans`. Clean clusters are
    /// thereby not touched at all on a skipped fire — the owed skips
    /// materialize via [`Cluster::sync_skips`] right before the next
    /// per-cluster observation, bit-identical to eager posting.
    #[serde(default)]
    fires_seen: u64,
    counters: ClusterCounters,
}

impl Cluster {
    /// Creates the bookkeeping for a cluster of `neurons` TDM neurons, all
    /// at rest (the caller's membrane span must start zeroed to match).
    #[must_use]
    pub fn new(neurons: usize) -> Self {
        Self {
            neurons,
            pending_leak_steps: 0,
            dirty: false,
            max_bound: 0,
            fires_seen: 0,
            counters: ClusterCounters::default(),
        }
    }

    /// Posts the fire-scan skips owed since the last sync (see
    /// [`Cluster::fires_seen`]): bit-identical to having called
    /// [`Cluster::note_skipped_scan`] at each of those fires. The owning
    /// slice calls this with its current fire epoch before anything
    /// observes or mutates this cluster's per-cluster state.
    #[inline]
    pub(crate) fn sync_skips(&mut self, fire_epoch: u64) {
        let owed = fire_epoch - self.fires_seen;
        if owed > 0 {
            self.fires_seen = fire_epoch;
            self.pending_leak_steps += owed as u32;
            self.counters.skipped_scans += owed;
        }
    }

    /// Marks this cluster's scan as executed at the given (post-op) fire
    /// epoch, so the just-handled `FIRE_OP` is not later counted as a skip.
    #[inline]
    pub(crate) fn mark_scanned(&mut self, fire_epoch: u64) {
        self.fires_seen = fire_epoch;
    }

    /// Fire-scan skips owed but not yet posted (see [`Cluster::sync_skips`]);
    /// folded into snapshots so exported state is always the eager state.
    #[inline]
    #[must_use]
    pub(crate) fn owed_skips(&self, fire_epoch: u64) -> u32 {
        (fire_epoch - self.fires_seen) as u32
    }

    /// Number of TDM neurons.
    #[must_use]
    pub fn neurons(&self) -> usize {
        self.neurons
    }

    /// Activity counters.
    #[must_use]
    pub fn counters(&self) -> ClusterCounters {
        self.counters
    }

    /// Whether the cluster received an update since its last executed fire
    /// scan (the TLU skip condition reads this).
    #[inline]
    #[must_use]
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// The TLU skip bookkeeping of one `FIRE_OP` — exactly what
    /// [`Cluster::fire_scan_into`]'s skip branch does. The slice's
    /// all-resting fast path applies it directly, without the per-cluster
    /// call and arena-segmentation machinery of the general scan loop.
    #[inline]
    pub fn note_skipped_scan(&mut self) {
        self.pending_leak_steps += 1;
        self.counters.skipped_scans += 1;
    }

    /// The TLU skip bookkeeping of `n` consecutive `FIRE_OP`s at once —
    /// bit-identical to calling [`Cluster::note_skipped_scan`] `n` times.
    /// Backs the worker's all-fire-tail fast-forward: once no update can
    /// arrive anymore, a clean cluster's remaining scans are all skips, and
    /// skips only increment these two counters.
    #[inline]
    pub fn note_skipped_scans(&mut self, n: u32) {
        self.pending_leak_steps += n;
        self.counters.skipped_scans += u64::from(n);
    }

    /// This cluster's own membrane span of a (possibly extended) `mem`
    /// slice.
    #[inline]
    fn span<'m>(&self, mem: &'m mut [i16]) -> &'m mut [i16] {
        &mut mem[..self.neurons]
    }

    /// Resets the membranes and the TLU bookkeeping (`RST_OP`).
    pub fn reset(&mut self, mem: &mut [i16]) {
        self.span(mem).fill(0);
        self.reset_bookkeeping();
    }

    /// Resets only the bookkeeping half — the owning slice zeroes the whole
    /// membrane arena in one pass and then calls this per cluster.
    pub(crate) fn reset_bookkeeping(&mut self) {
        self.pending_leak_steps = 0;
        self.dirty = false;
        self.max_bound = 0;
        self.fires_seen = 0;
    }

    /// Captures the architectural state (membranes + TLU bookkeeping) so it
    /// can be restored later; counters are not part of the snapshot.
    #[must_use]
    pub fn snapshot(&self, mem: &[i16]) -> ClusterState {
        ClusterState {
            states: mem[..self.neurons].to_vec(),
            pending_leak_steps: self.pending_leak_steps,
            dirty: self.dirty,
        }
    }

    /// Copies the architectural state into an existing snapshot without
    /// allocating (the streaming hot path).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot was sized for a different neuron count.
    pub fn snapshot_into(&self, mem: &[i16], out: &mut ClusterState) {
        assert_eq!(
            out.states.len(),
            self.neurons,
            "cluster snapshot neuron count mismatch"
        );
        out.states.copy_from_slice(&mem[..self.neurons]);
        out.pending_leak_steps = self.pending_leak_steps;
        out.dirty = self.dirty;
    }

    /// Restores a previously captured architectural state.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot was taken from a cluster with a different
    /// neuron count.
    pub fn restore(&mut self, mem: &mut [i16], state: &ClusterState) {
        assert_eq!(
            state.states.len(),
            self.neurons,
            "cluster snapshot neuron count mismatch"
        );
        mem[..self.neurons].copy_from_slice(&state.states);
        self.pending_leak_steps = state.pending_leak_steps;
        self.dirty = state.dirty;
        self.max_bound = state.states.iter().copied().max().unwrap_or(0);
    }

    /// Applies any leak owed from skipped fire scans. Called before the
    /// cluster state is observed or modified.
    #[inline]
    fn catch_up(&mut self, mem: &mut [i16], params: LifHardwareParams, kernel: Kernel) {
        if self.pending_leak_steps == 0 {
            return;
        }
        self.catch_up_cold(mem, params, kernel);
    }

    /// The cold half of [`Cluster::catch_up`]: materializes the owed leak.
    fn catch_up_cold(&mut self, mem: &mut [i16], params: LifHardwareParams, kernel: Kernel) {
        if params.leak != 0 {
            let total = i32::from(params.leak) * self.pending_leak_steps as i32;
            kernel.apply_leak(self.span(mem), total);
            // Clamping is monotone, so the shifted bound still dominates.
            self.max_bound = clamp_state(i32::from(self.max_bound) - total);
        }
        self.pending_leak_steps = 0;
    }

    /// Upper bound on the maximum membrane after the owed leak plus
    /// `extra_steps` further leak steps were applied (clamping included).
    #[inline]
    fn bound_after_leak(&self, params: LifHardwareParams, extra_steps: u32) -> i16 {
        let steps = i64::from(self.pending_leak_steps) + i64::from(extra_steps);
        let total = i64::from(params.leak) * steps;
        (i64::from(self.max_bound) - total).clamp(i64::from(i8::MIN), i64::from(i8::MAX)) as i16
    }

    /// Accumulates a synaptic weight into the local neuron `index`
    /// (one state update, one cycle on the datapath). This is the naive
    /// reference datapath's per-synapse form; it is always scalar.
    ///
    /// # Panics
    ///
    /// Panics if `index` is outside the cluster's neurons.
    pub fn integrate(
        &mut self,
        mem: &mut [i16],
        index: usize,
        weight: i8,
        params: LifHardwareParams,
    ) {
        assert!(index < self.neurons, "neuron index out of range");
        self.catch_up(mem, params, Kernel::Scalar);
        let state = clamp_state(i32::from(mem[index]) + i32::from(weight));
        mem[index] = state;
        self.max_bound = self.max_bound.max(state);
        self.dirty = true;
        self.counters.synaptic_ops += 1;
    }

    /// Accumulates a batch of contributions addressed to this cluster in one
    /// event window: the TLU catch-up runs **once**, then the accumulation is
    /// a tight loop over the contributions — the contribution-list form of
    /// the window triple (`open_window` / a
    /// [`Kernel::accumulate_span`] call / `close_window`) the
    /// fused plan datapath uses, kept public as the batching API for callers
    /// that hold materialized contribution lists (and pinned against both
    /// other forms by the equivalence tests). `cluster_base` is the global
    /// index of this cluster's first neuron.
    ///
    /// Functionally identical to calling [`Cluster::integrate`] per entry:
    /// within one event window each neuron receives at most one contribution,
    /// so the saturating accumulation order cannot differ, and `catch_up`
    /// zeroes the pending leak on its first call anyway.
    ///
    /// # Panics
    ///
    /// Panics if a contribution addresses a neuron outside this cluster.
    pub fn integrate_all(
        &mut self,
        mem: &mut [i16],
        cluster_base: usize,
        contributions: &[Contribution],
        params: LifHardwareParams,
    ) {
        if contributions.is_empty() {
            return;
        }
        self.catch_up(mem, params, Kernel::Scalar);
        let span = self.span(mem);
        let mut bound = self.max_bound;
        for c in contributions {
            let index = c.neuron - cluster_base;
            // i16 arithmetic cannot overflow here: |state| <= 128, |w| <= 127.
            let state =
                (span[index] + i16::from(c.weight)).clamp(i16::from(i8::MIN), i16::from(i8::MAX));
            span[index] = state;
            bound = bound.max(state);
        }
        self.max_bound = bound;
        self.dirty = true;
        self.counters.synaptic_ops += contributions.len() as u64;
    }

    /// Opens an event window on this cluster for the fused datapath:
    /// materializes any owed leak exactly like the first
    /// [`Cluster::integrate`] of the window would. Idempotent within a
    /// window.
    #[inline]
    pub(crate) fn open_window(
        &mut self,
        mem: &mut [i16],
        params: LifHardwareParams,
        kernel: Kernel,
    ) {
        self.catch_up(mem, params, kernel);
    }

    /// Closes an event window: commits the **exact** maximum membrane value
    /// the window's span accumulations observed *within this cluster* and
    /// the dirty/ops bookkeeping [`Cluster::integrate`] would have performed
    /// per tap. (Exactness of the bound matters: it decides the fire-scan
    /// walk elision, and an overestimate could materialize a leak the scalar
    /// path defers — visible in the persisted `pending_leak_steps`.)
    #[inline]
    pub(crate) fn close_window(&mut self, window_max: i16, taps: u64) {
        self.max_bound = self.max_bound.max(window_max);
        self.dirty = true;
        self.counters.synaptic_ops += taps;
    }

    /// Executes (or skips) the fire scan that closes a timestep.
    ///
    /// When `tlu_enabled` is set and no update arrived since the last scan,
    /// the scan is skipped: the leak is deferred (it can only lower the
    /// membrane, so no spike can be missed) and no cycles are spent. The
    /// returned vector holds the local indices of the neurons that fired.
    ///
    /// Test-only convenience: it allocates per call, so the public API is
    /// the allocation-free [`Cluster::fire_scan_into`], which the engine's
    /// hot path uses exclusively.
    #[cfg(test)]
    pub fn fire_scan(
        &mut self,
        mem: &mut [i16],
        params: LifHardwareParams,
        tlu_enabled: bool,
    ) -> Vec<usize> {
        let mut fired = Vec::new();
        let _ = self.fire_scan_into(mem, params, tlu_enabled, Kernel::Scalar, &mut fired);
        fired
    }

    /// Executes (or skips) the fire scan that closes a timestep, appending
    /// the local indices of firing neurons to `out` (not cleared first);
    /// returns `true` if the scan executed (`false` if the TLU skipped it:
    /// no update arrived since the last scan, so the leak is deferred — it
    /// can only lower the membrane, no spike can be missed — and no cycles
    /// are spent).
    pub fn fire_scan_into(
        &mut self,
        mem: &mut [i16],
        params: LifHardwareParams,
        tlu_enabled: bool,
        kernel: Kernel,
        out: &mut Vec<usize>,
    ) -> bool {
        if tlu_enabled && !self.dirty {
            self.note_skipped_scan();
            return false;
        }
        if !self.scan_elides(params) {
            self.scan_walk(mem, params, kernel, out);
        }
        true
    }

    /// The O(1) half of an executing fire scan: when the membrane bound
    /// proves no neuron can reach threshold after this leak step, the
    /// per-neuron walk is elided and the leak deferred — the identical
    /// lazy-leak argument as the TLU skip, so the architectural state at the
    /// next observation point is bit-identical. Returns `true` (scan done,
    /// counters updated) on elision; on `false` the caller must run
    /// [`Cluster::scan_walk`]. Public so the slice's fire loop can take this
    /// branch without the arena segmentation the walk needs — at sparse
    /// activity nearly every *dirty* cluster's scan resolves right here.
    #[inline]
    pub fn scan_elides(&mut self, params: LifHardwareParams) -> bool {
        // The scan executes (cycle cost and counters are those of an
        // executed scan) whether or not the walk is elided.
        if self.bound_after_leak(params, 1) < params.threshold {
            self.counters.fire_scans += 1;
            self.dirty = false;
            self.pending_leak_steps += 1;
            true
        } else {
            false
        }
    }

    /// The per-neuron half of an executing fire scan: materializes the owed
    /// leak, walks every TDM neuron and appends the local indices of firing
    /// neurons to `out`. Only valid after [`Cluster::scan_elides`] returned
    /// `false` (the pair is exactly one executed scan).
    pub fn scan_walk(
        &mut self,
        mem: &mut [i16],
        params: LifHardwareParams,
        kernel: Kernel,
        out: &mut Vec<usize>,
    ) {
        self.counters.fire_scans += 1;
        self.dirty = false;
        self.catch_up(mem, params, kernel);
        let before = out.len();
        // The full walk visits every neuron, so the bound is exact again.
        self.max_bound = kernel.fire_walk(self.span(mem), params.leak, params.threshold, out);
        self.counters.spikes += (out.len() - before) as u64;
    }
}

/// Saturates a value to the 8-bit membrane range of the hardware.
fn clamp_state(value: i32) -> i16 {
    value.clamp(i32::from(i8::MIN), i32::from(i8::MAX)) as i16
}

#[cfg(test)]
mod tests {
    use super::*;

    const PARAMS: LifHardwareParams = LifHardwareParams {
        leak: 1,
        threshold: 10,
    };

    /// A cluster together with its own little membrane arena — the
    /// standalone harness the slice normally provides.
    struct Bench {
        cluster: Cluster,
        mem: Vec<i16>,
    }

    impl Bench {
        fn new(neurons: usize) -> Self {
            Self {
                cluster: Cluster::new(neurons),
                mem: vec![0; neurons],
            }
        }

        fn integrate(&mut self, index: usize, weight: i8, params: LifHardwareParams) {
            self.cluster.integrate(&mut self.mem, index, weight, params);
        }

        fn fire_scan(&mut self, params: LifHardwareParams, tlu: bool) -> Vec<usize> {
            self.cluster.fire_scan(&mut self.mem, params, tlu)
        }

        fn fire_scan_into(
            &mut self,
            params: LifHardwareParams,
            tlu: bool,
            out: &mut Vec<usize>,
        ) -> bool {
            self.cluster
                .fire_scan_into(&mut self.mem, params, tlu, Kernel::Scalar, out)
        }

        fn state(&self, index: usize) -> i16 {
            self.mem[index]
        }

        fn counters(&self) -> ClusterCounters {
            self.cluster.counters()
        }

        fn snapshot(&self) -> ClusterState {
            self.cluster.snapshot(&self.mem)
        }
    }

    #[test]
    fn integrate_accumulates_and_saturates() {
        let mut c = Bench::new(4);
        let params = LifHardwareParams {
            leak: 0,
            threshold: 127,
        };
        for _ in 0..40 {
            c.integrate(0, 7, params);
        }
        assert_eq!(c.state(0), 127);
        for _ in 0..80 {
            c.integrate(1, -8, params);
        }
        assert_eq!(c.state(1), -128);
        assert_eq!(c.counters().synaptic_ops, 120);
    }

    #[test]
    fn fire_scan_applies_leak_and_threshold() {
        let mut c = Bench::new(2);
        c.integrate(0, 7, PARAMS);
        c.integrate(0, 6, PARAMS); // state 13
        let fired = c.fire_scan(PARAMS, true);
        // 13 - 1 = 12 >= 10: fires and resets.
        assert_eq!(fired, vec![0]);
        assert_eq!(c.state(0), 0);
        assert_eq!(c.counters().spikes, 1);
    }

    #[test]
    fn tlu_skips_scans_without_updates_and_catches_up_leak() {
        let mut reference = Bench::new(1);
        let mut lazy = Bench::new(1);
        let params = LifHardwareParams {
            leak: 2,
            threshold: 100,
        };
        reference.integrate(0, 50, params);
        lazy.integrate(0, 50, params);
        // Reference executes every scan; lazy skips idle ones.
        for _ in 0..5 {
            let _ = reference.fire_scan(params, false);
            let _ = lazy.fire_scan(params, true);
        }
        // One scan executed + 4 skipped on the lazy cluster.
        assert_eq!(lazy.counters().skipped_scans, 4);
        // A new update forces the catch-up; states must agree.
        reference.integrate(0, 3, params);
        lazy.integrate(0, 3, params);
        assert_eq!(reference.state(0), lazy.state(0));
    }

    #[test]
    fn tlu_never_misses_a_spike() {
        // A neuron left exactly below threshold cannot fire during idle
        // timesteps, so skipping scans is functionally safe.
        let mut c = Bench::new(1);
        let params = LifHardwareParams {
            leak: 0,
            threshold: 10,
        };
        c.integrate(0, 9, params);
        let _ = c.fire_scan(params, true);
        for _ in 0..10 {
            assert!(c.fire_scan(params, true).is_empty());
        }
        c.integrate(0, 1, params);
        assert_eq!(c.fire_scan(params, true), vec![0]);
    }

    #[test]
    fn disabled_tlu_scans_every_timestep() {
        let mut c = Bench::new(1);
        for _ in 0..5 {
            let _ = c.fire_scan(PARAMS, false);
        }
        assert_eq!(c.counters().fire_scans, 5);
        assert_eq!(c.counters().skipped_scans, 0);
    }

    #[test]
    fn reset_clears_state_and_bookkeeping() {
        let mut c = Bench::new(2);
        c.integrate(0, 5, PARAMS);
        let _ = c.fire_scan(PARAMS, true);
        let _ = c.fire_scan(PARAMS, true); // skipped, pending leak
        c.cluster.reset(&mut c.mem);
        assert_eq!(c.state(0), 0);
        assert_eq!(c.state(1), 0);
        // After reset a scan without updates is skipped again (not dirty).
        assert!(c.fire_scan(PARAMS, true).is_empty());
    }

    #[test]
    fn snapshot_and_restore_round_trip_the_architectural_state() {
        let mut c = Bench::new(3);
        c.integrate(1, 7, PARAMS);
        let _ = c.fire_scan(PARAMS, true);
        let _ = c.fire_scan(PARAMS, true); // skipped: pending leak + not dirty
        let snap = c.snapshot();
        assert!(!snap.is_resting());

        let mut fresh = Bench::new(3);
        fresh.cluster.restore(&mut fresh.mem, &snap);
        // Continuing from the restored state is indistinguishable from
        // continuing on the original cluster.
        c.integrate(1, 5, PARAMS);
        fresh.integrate(1, 5, PARAMS);
        assert_eq!(c.state(1), fresh.state(1));
        assert_eq!(c.fire_scan(PARAMS, true), fresh.fire_scan(PARAMS, true));
    }

    #[test]
    fn snapshot_into_matches_snapshot() {
        let mut c = Bench::new(3);
        c.integrate(2, 5, PARAMS);
        let mut out = ClusterState::resting(3);
        c.cluster.snapshot_into(&c.mem, &mut out);
        assert_eq!(out, c.snapshot());
    }

    #[test]
    fn resting_snapshot_matches_a_fresh_cluster() {
        let c = Bench::new(4);
        assert_eq!(c.snapshot(), ClusterState::resting(4));
        let mut s = ClusterState::resting(2);
        s.states[0] = 9;
        s.dirty = true;
        s.reset();
        assert!(s.is_resting());
    }

    #[test]
    #[should_panic(expected = "neuron count mismatch")]
    fn restore_rejects_mismatched_snapshot() {
        let mut c = Bench::new(2);
        c.cluster.restore(&mut c.mem, &ClusterState::resting(3));
    }

    #[test]
    fn lazy_and_eager_leak_agree_at_the_saturation_floor() {
        let params = LifHardwareParams {
            leak: 3,
            threshold: 100,
        };
        let mut eager = Bench::new(1);
        let mut lazy = Bench::new(1);
        eager.integrate(0, -120, params);
        lazy.integrate(0, -120, params);
        for _ in 0..10 {
            let _ = eager.fire_scan(params, false);
            let _ = lazy.fire_scan(params, true);
        }
        eager.integrate(0, 5, params);
        lazy.integrate(0, 5, params);
        assert_eq!(eager.state(0), lazy.state(0));
    }

    #[test]
    fn batched_window_matches_per_tap_integrates() {
        let contributions = [
            Contribution {
                neuron: 130,
                weight: 5,
            },
            Contribution {
                neuron: 131,
                weight: -3,
            },
            Contribution {
                neuron: 133,
                weight: 7,
            },
        ];
        let mut batched = Bench::new(8);
        let mut single = Bench::new(8);
        // Give both some deferred leak so the window's one-shot catch-up is
        // exercised against per-tap catch-ups.
        for c in [&mut batched, &mut single] {
            c.integrate(2, 9, PARAMS);
            let _ = c.fire_scan_into(PARAMS, true, &mut Vec::new());
            let _ = c.fire_scan_into(PARAMS, true, &mut Vec::new());
        }
        batched
            .cluster
            .integrate_all(&mut batched.mem, 128, &contributions, PARAMS);
        for c in &contributions {
            single.integrate(c.neuron - 128, c.weight, PARAMS);
        }
        for i in 0..8 {
            assert_eq!(batched.state(i), single.state(i), "neuron {i}");
        }
        assert_eq!(
            batched.counters().synaptic_ops,
            single.counters().synaptic_ops
        );
        // The span window triple is a third equivalent formulation.
        let mut windowed = Bench::new(8);
        windowed.integrate(2, 9, PARAMS);
        let _ = windowed.fire_scan_into(PARAMS, true, &mut Vec::new());
        let _ = windowed.fire_scan_into(PARAMS, true, &mut Vec::new());
        windowed
            .cluster
            .open_window(&mut windowed.mem, PARAMS, Kernel::Scalar);
        let a = Kernel::Scalar.accumulate_span(&mut windowed.mem, 2, &[5, -3]);
        let b = Kernel::Scalar.accumulate_span(&mut windowed.mem, 5, &[7]);
        windowed.cluster.close_window(a.max(b), 3);
        for i in 0..8 {
            assert_eq!(windowed.state(i), single.state(i), "neuron {i}");
        }
        assert_eq!(
            windowed.counters().synaptic_ops,
            single.counters().synaptic_ops
        );
        let mut fired_w = Vec::new();
        let mut fired_s = Vec::new();
        let _ = windowed.fire_scan_into(PARAMS, true, &mut fired_w);
        let _ = single.fire_scan_into(PARAMS, true, &mut fired_s);
        assert_eq!(fired_w, fired_s);
    }
}

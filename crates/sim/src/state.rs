//! Persistent neuron state of a mapped layer across engine invocations.
//!
//! The physical SNE keeps its membrane potentials in the cluster state
//! memories between input chunks: the network is configured once and events
//! then stream through continuously. The cycle simulator re-uses its slices
//! for every layer (and for every mapping pass of a large layer), so a layer
//! that must survive between [`crate::Engine::run_layer_stateful`] calls
//! stores its state here: one [`ClusterState`] snapshot per architectural
//! cluster slot the layer occupies, in `(pass, slice, cluster)` order.
//!
//! A [`LayerState`] is created once per layer per session from the engine
//! configuration and the layer mapping, pre-sized so the streaming hot path
//! performs no allocation beyond the snapshot copies.

use serde::{Deserialize, Serialize};

use crate::cluster::ClusterState;
use crate::config::SneConfig;
use crate::mapping::LayerMapping;

/// Persistent architectural state of one mapped layer on one engine
/// configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerState {
    /// One snapshot per cluster slot, `(pass, slice, cluster)` row-major.
    clusters: Vec<ClusterState>,
    passes: usize,
    slices: usize,
    clusters_per_slice: usize,
    neurons_per_cluster: usize,
}

impl LayerState {
    /// Allocates resting state for `mapping` executed on an engine with
    /// configuration `config` (covering every mapping pass the layer needs).
    #[must_use]
    pub fn new(config: &SneConfig, mapping: &LayerMapping) -> Self {
        let per_pass = config.num_slices * config.neurons_per_slice();
        let passes = if per_pass == 0 {
            0
        } else {
            mapping.total_output_neurons().div_ceil(per_pass)
        };
        let slots = passes * config.num_slices * config.clusters_per_slice;
        Self {
            clusters: vec![ClusterState::resting(config.neurons_per_cluster); slots],
            passes,
            slices: config.num_slices,
            clusters_per_slice: config.clusters_per_slice,
            neurons_per_cluster: config.neurons_per_cluster,
        }
    }

    /// Number of mapping passes the layer needs on this configuration.
    #[must_use]
    pub fn passes(&self) -> usize {
        self.passes
    }

    /// Returns all membranes and TLU bookkeeping to the resting state
    /// (the software equivalent of a `RST_OP`).
    pub fn reset(&mut self) {
        for cluster in &mut self.clusters {
            cluster.reset();
        }
    }

    /// Returns `true` if every cluster slot is at rest (as after
    /// [`LayerState::reset`] or construction).
    #[must_use]
    pub fn is_resting(&self) -> bool {
        self.clusters.iter().all(ClusterState::is_resting)
    }

    /// Returns `true` if this state was sized for `config` and `mapping`.
    #[must_use]
    pub fn matches(&self, config: &SneConfig, mapping: &LayerMapping) -> bool {
        let per_pass = config.num_slices * config.neurons_per_slice();
        per_pass > 0
            && self.slices == config.num_slices
            && self.clusters_per_slice == config.clusters_per_slice
            && self.neurons_per_cluster == config.neurons_per_cluster
            && self.passes == mapping.total_output_neurons().div_ceil(per_pass)
    }

    /// Cluster slots of slice `slice` in pass `pass` (shared view).
    ///
    /// # Panics
    ///
    /// Panics if `pass` or `slice` is out of range.
    #[must_use]
    pub fn slice_state(&self, pass: usize, slice: usize) -> &[ClusterState] {
        let range = self.slot_range(pass, slice);
        &self.clusters[range]
    }

    /// Cluster slots of slice `slice` in pass `pass` (mutable view, used by
    /// the engine to export state after a pass).
    ///
    /// # Panics
    ///
    /// Panics if `pass` or `slice` is out of range.
    #[must_use]
    pub fn slice_state_mut(&mut self, pass: usize, slice: usize) -> &mut [ClusterState] {
        let range = self.slot_range(pass, slice);
        &mut self.clusters[range]
    }

    /// Disjoint mutable views of every slice's cluster slots in pass `pass`,
    /// in slice order — one view per per-slice worker unit, so a threaded
    /// executor can hand each slice its share of the state with no shared
    /// mutable borrow.
    ///
    /// # Panics
    ///
    /// Panics if `pass` is out of range.
    pub fn pass_slices_mut(&mut self, pass: usize) -> impl Iterator<Item = &mut [ClusterState]> {
        assert!(pass < self.passes, "pass {pass} out of range");
        let per_slice = self.clusters_per_slice;
        let start = pass * self.slices * per_slice;
        let end = start + self.slices * per_slice;
        self.clusters[start..end].chunks_mut(per_slice)
    }

    fn slot_range(&self, pass: usize, slice: usize) -> std::ops::Range<usize> {
        assert!(pass < self.passes, "pass {pass} out of range");
        assert!(slice < self.slices, "slice {slice} out of range");
        let start = (pass * self.slices + slice) * self.clusters_per_slice;
        start..start + self.clusters_per_slice
    }

    /// Membrane state of the global output neuron `neuron`, if the layer
    /// state covers it (observability helper for tests and debugging).
    #[must_use]
    pub fn membrane(&self, neuron: usize) -> Option<i16> {
        let per_cluster = self.neurons_per_cluster;
        let slot = neuron / per_cluster;
        let local = neuron % per_cluster;
        self.clusters.get(slot).map(|c| c.states[local])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{LifHardwareParams, MapShape};

    fn config() -> SneConfig {
        SneConfig {
            num_slices: 2,
            clusters_per_slice: 4,
            neurons_per_cluster: 8,
            ..SneConfig::default()
        }
    }

    fn mapping(out_channels: u16) -> LayerMapping {
        LayerMapping::conv(
            MapShape::new(1, 4, 4),
            out_channels,
            3,
            vec![1i8; usize::from(out_channels) * 9],
            LifHardwareParams::default(),
        )
        .unwrap()
    }

    #[test]
    fn sizing_covers_every_pass() {
        // Capacity 64 per pass; 2 channels * 16 = 32 neurons -> 1 pass.
        let one_pass = LayerState::new(&config(), &mapping(2));
        assert_eq!(one_pass.passes(), 1);
        // 8 channels * 16 = 128 neurons -> 2 passes of 8 slice slots each.
        let two_pass = LayerState::new(&config(), &mapping(8));
        assert_eq!(two_pass.passes(), 2);
        assert!(two_pass.matches(&config(), &mapping(8)));
        assert!(!two_pass.matches(&config(), &mapping(2)));
        assert!(!two_pass.matches(&SneConfig::default(), &mapping(8)));
    }

    #[test]
    fn reset_restores_the_resting_state() {
        let mut state = LayerState::new(&config(), &mapping(2));
        assert!(state.is_resting());
        state.slice_state_mut(0, 1)[2].states[3] = 17;
        state.slice_state_mut(0, 1)[2].dirty = true;
        assert!(!state.is_resting());
        // Pass 0, slice 1, cluster 2, neuron 3 -> global neuron 51.
        assert_eq!(state.membrane(51), Some(17));
        state.reset();
        assert!(state.is_resting());
        assert_eq!(state.membrane(0), Some(0));
    }

    #[test]
    fn pass_slices_mut_hands_out_disjoint_per_slice_views() {
        let mut state = LayerState::new(&config(), &mapping(8));
        let views: Vec<_> = state.pass_slices_mut(1).collect();
        assert_eq!(views.len(), 2);
        assert!(views.iter().all(|v| v.len() == 4));
        views
            .into_iter()
            .enumerate()
            .for_each(|(s, v)| v[0].pending_leak_steps = s as u32 + 1);
        assert_eq!(state.slice_state(1, 0)[0].pending_leak_steps, 1);
        assert_eq!(state.slice_state(1, 1)[0].pending_leak_steps, 2);
        assert_eq!(state.slice_state(0, 0)[0].pending_leak_steps, 0);
    }

    #[test]
    fn slice_views_address_distinct_slots() {
        let mut state = LayerState::new(&config(), &mapping(8));
        state.slice_state_mut(1, 0)[0].pending_leak_steps = 5;
        assert_eq!(state.slice_state(1, 0)[0].pending_leak_steps, 5);
        assert_eq!(state.slice_state(0, 0)[0].pending_leak_steps, 0);
        assert!(state.membrane(10_000).is_none());
    }
}

//! Mapping of eCNN layers onto the SNE.
//!
//! The paper (Listing 1 and §III-D.5) maps a layer as follows: software
//! programs one set of weights per output channel, the engine then consumes
//! the full input event stream, updating every output neuron whose receptive
//! field contains the event. The address filter selects the affected neurons,
//! the address shift places them relative to the cluster base address, and
//! the filter buffer provides the weight selected by the input channel and
//! the relative position.
//!
//! [`LayerMapping`] captures exactly the information those blocks need:
//! the layer geometry, the quantized 4-bit weights and the LIF parameters
//! programmed through the register interface.

use serde::{Deserialize, Serialize};
use sne_event::Event;

use crate::SimError;

/// LIF parameters programmed into the engine for one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LifHardwareParams {
    /// Linear leak subtracted at every timestep.
    pub leak: i16,
    /// Firing threshold.
    pub threshold: i16,
}

impl Default for LifHardwareParams {
    fn default() -> Self {
        Self {
            leak: 0,
            threshold: 16,
        }
    }
}

/// Shape of a feature map handled by a mapping, `(channels, height, width)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MapShape {
    /// Number of channels.
    pub channels: u16,
    /// Height in neurons.
    pub height: u16,
    /// Width in neurons.
    pub width: u16,
}

impl MapShape {
    /// Creates a shape.
    #[must_use]
    pub fn new(channels: u16, height: u16, width: u16) -> Self {
        Self {
            channels,
            height,
            width,
        }
    }

    /// Total number of positions.
    #[must_use]
    pub fn len(&self) -> usize {
        usize::from(self.channels) * usize::from(self.height) * usize::from(self.width)
    }

    /// Returns `true` if any dimension is zero.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.channels == 0 || self.height == 0 || self.width == 0
    }

    /// Row-major index of `(c, y, x)`.
    #[must_use]
    pub fn index(&self, c: u16, y: u16, x: u16) -> usize {
        (usize::from(c) * usize::from(self.height) + usize::from(y)) * usize::from(self.width)
            + usize::from(x)
    }

    /// Inverse of [`MapShape::index`].
    #[must_use]
    pub fn position(&self, index: usize) -> (u16, u16, u16) {
        let x = (index % usize::from(self.width)) as u16;
        let rest = index / usize::from(self.width);
        let y = (rest % usize::from(self.height)) as u16;
        let c = (rest / usize::from(self.height)) as u16;
        (c, y, x)
    }
}

/// A weighted contribution of one input event to one output neuron.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Contribution {
    /// Global output-neuron index (row-major over the output shape).
    pub neuron: usize,
    /// Quantized synaptic weight.
    pub weight: i8,
}

/// An eCNN layer mapped onto the engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LayerMapping {
    /// Stride-1 "same" convolution.
    Conv {
        /// Input feature-map shape.
        input: MapShape,
        /// Number of output channels.
        out_channels: u16,
        /// Square kernel size (odd).
        kernel: u16,
        /// Weights in `[out][in][kh][kw]` layout, on the 4-bit grid.
        weights: Vec<i8>,
        /// LIF parameters of the layer.
        params: LifHardwareParams,
    },
    /// Fully-connected layer.
    Dense {
        /// Input feature-map shape (flattened row-major).
        input: MapShape,
        /// Number of output neurons.
        outputs: u16,
        /// Weights in `[out][in]` layout, on the 4-bit grid.
        weights: Vec<i8>,
        /// LIF parameters of the layer.
        params: LifHardwareParams,
    },
}

impl LayerMapping {
    /// Creates a convolution mapping.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the geometry is inconsistent
    /// with the weight count or the kernel is even/zero.
    pub fn conv(
        input: MapShape,
        out_channels: u16,
        kernel: u16,
        weights: Vec<i8>,
        params: LifHardwareParams,
    ) -> Result<Self, SimError> {
        if input.is_empty() || out_channels == 0 {
            return Err(SimError::InvalidConfig {
                name: "conv mapping",
                reason: "input shape and output channels must be non-zero".to_owned(),
            });
        }
        if kernel == 0 || kernel % 2 == 0 {
            return Err(SimError::InvalidConfig {
                name: "kernel",
                reason: format!("kernel {kernel} must be odd and non-zero"),
            });
        }
        let expected = usize::from(out_channels)
            * usize::from(input.channels)
            * usize::from(kernel)
            * usize::from(kernel);
        if weights.len() != expected {
            return Err(SimError::InvalidConfig {
                name: "weights",
                reason: format!("expected {expected} weights, got {}", weights.len()),
            });
        }
        Ok(Self::Conv {
            input,
            out_channels,
            kernel,
            weights,
            params,
        })
    }

    /// Creates a fully-connected mapping.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the geometry is inconsistent
    /// with the weight count.
    pub fn dense(
        input: MapShape,
        outputs: u16,
        weights: Vec<i8>,
        params: LifHardwareParams,
    ) -> Result<Self, SimError> {
        if input.is_empty() || outputs == 0 {
            return Err(SimError::InvalidConfig {
                name: "dense mapping",
                reason: "input shape and outputs must be non-zero".to_owned(),
            });
        }
        let expected = usize::from(outputs) * input.len();
        if weights.len() != expected {
            return Err(SimError::InvalidConfig {
                name: "weights",
                reason: format!("expected {expected} weights, got {}", weights.len()),
            });
        }
        Ok(Self::Dense {
            input,
            outputs,
            weights,
            params,
        })
    }

    /// Input feature-map shape.
    #[must_use]
    pub fn input_shape(&self) -> MapShape {
        match self {
            Self::Conv { input, .. } | Self::Dense { input, .. } => *input,
        }
    }

    /// Output feature-map shape.
    #[must_use]
    pub fn output_shape(&self) -> MapShape {
        match self {
            Self::Conv {
                input,
                out_channels,
                ..
            } => MapShape::new(*out_channels, input.height, input.width),
            Self::Dense { outputs, .. } => MapShape::new(*outputs, 1, 1),
        }
    }

    /// Total number of output neurons implemented by the layer.
    #[must_use]
    pub fn total_output_neurons(&self) -> usize {
        self.output_shape().len()
    }

    /// LIF parameters programmed for the layer.
    #[must_use]
    pub fn params(&self) -> LifHardwareParams {
        match self {
            Self::Conv { params, .. } | Self::Dense { params, .. } => *params,
        }
    }

    /// Number of weight sets the slice filter buffer must hold (one per input
    /// channel for a convolution, one per input position for a dense layer).
    #[must_use]
    pub fn weight_sets(&self) -> usize {
        match self {
            Self::Conv { input, .. } => usize::from(input.channels),
            Self::Dense { input, .. } => input.len(),
        }
    }

    /// Validates that an `UPDATE_OP` event addresses the input feature map.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventOutOfRange`] if the event coordinates fall
    /// outside the mapped input shape.
    pub fn validate_event(&self, event: &Event) -> Result<(), SimError> {
        let input = self.input_shape();
        if event.ch >= input.channels || event.x >= input.width || event.y >= input.height {
            return Err(SimError::EventOutOfRange {
                event: format!("({}, {}, {})", event.ch, event.x, event.y),
                expected: format!("{}x{}x{}", input.channels, input.height, input.width),
            });
        }
        Ok(())
    }

    /// Contributions of an input event restricted to the output neurons in
    /// `range` (the address filter + address shift of the slices assigned to
    /// that range). The returned neuron indices are global.
    ///
    /// Test-only convenience: it allocates per call, so the public API is
    /// the allocation-free [`LayerMapping::contributions_in_range_into`],
    /// which the engine's workers (and the compiled [`crate::plan`] tables)
    /// use exclusively.
    #[cfg(test)]
    #[must_use]
    pub fn contributions_in_range(
        &self,
        event: &Event,
        range: std::ops::Range<usize>,
    ) -> Vec<Contribution> {
        let mut out = Vec::new();
        self.contributions_in_range_into(event, range, &mut out);
        out
    }

    /// Contributions of an input event restricted to the output neurons in
    /// `range` (the address filter + address shift of the slices assigned to
    /// that range), appended to `out` (which is *not* cleared first) so the
    /// engine's per-slice workers can reuse one scratch buffer per slice
    /// across the whole event stream. The appended neuron indices are global.
    ///
    /// This is the reference oracle of the event datapath: the compiled
    /// [`crate::plan::LayerPlan`] must reproduce it bit-exactly, entry order
    /// included.
    pub fn contributions_in_range_into(
        &self,
        event: &Event,
        range: std::ops::Range<usize>,
        out: &mut Vec<Contribution>,
    ) {
        if range.is_empty() {
            return;
        }
        match self {
            Self::Conv {
                input,
                kernel,
                weights,
                ..
            } => {
                let out_shape = self.output_shape();
                let half = i32::from(*kernel / 2);
                // Only the output channels whose neuron planes intersect
                // `range` can contribute: the address filter of a slice
                // rejects everything else, so skip those channels outright
                // instead of enumerating the full receptive field per slice.
                // Clamp to the layer's neurons first so the channel indices
                // fit u16 even for over-wide caller ranges.
                let plane = usize::from(input.height) * usize::from(input.width);
                let end = range.end.min(out_shape.len());
                if range.start >= end {
                    return;
                }
                let first_channel = (range.start / plane) as u16;
                let last_channel = ((end - 1) / plane) as u16;
                for oc in first_channel..=last_channel {
                    for ky in 0..*kernel {
                        for kx in 0..*kernel {
                            let oy = i32::from(event.y) + half - i32::from(ky);
                            let ox = i32::from(event.x) + half - i32::from(kx);
                            if oy < 0
                                || ox < 0
                                || oy >= i32::from(input.height)
                                || ox >= i32::from(input.width)
                            {
                                continue;
                            }
                            let neuron = out_shape.index(oc, oy as u16, ox as u16);
                            if !range.contains(&neuron) {
                                continue;
                            }
                            let w_idx = ((usize::from(oc) * usize::from(input.channels)
                                + usize::from(event.ch))
                                * usize::from(*kernel)
                                + usize::from(ky))
                                * usize::from(*kernel)
                                + usize::from(kx);
                            out.push(Contribution {
                                neuron,
                                weight: weights[w_idx],
                            });
                        }
                    }
                }
            }
            Self::Dense {
                input,
                outputs,
                weights,
                ..
            } => {
                let in_idx = input.index(event.ch, event.y, event.x);
                let inputs = input.len();
                // Dense neurons are laid out contiguously: the range *is* the
                // set of addressed outputs.
                for o in range.start..range.end.min(usize::from(*outputs)) {
                    out.push(Contribution {
                        neuron: o,
                        weight: weights[o * inputs + in_idx],
                    });
                }
            }
        }
    }

    /// All contributions of an event (no range restriction). Test-only, like
    /// [`LayerMapping::contributions_in_range`].
    #[cfg(test)]
    #[must_use]
    pub fn contributions(&self, event: &Event) -> Vec<Contribution> {
        self.contributions_in_range(event, 0..self.total_output_neurons())
    }

    /// Output position `(channel, y, x)` of a global output-neuron index.
    #[must_use]
    pub fn output_position(&self, neuron: usize) -> (u16, u16, u16) {
        self.output_shape().position(neuron)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv_mapping() -> LayerMapping {
        // 1 input channel, 4x4 map, 2 output channels, 3x3 kernel.
        // Kernel of output channel 0 is all ones; channel 1 all twos.
        let mut weights = vec![1i8; 9];
        weights.extend(vec![2i8; 9]);
        LayerMapping::conv(
            MapShape::new(1, 4, 4),
            2,
            3,
            weights,
            LifHardwareParams {
                leak: 0,
                threshold: 4,
            },
        )
        .unwrap()
    }

    #[test]
    fn conv_mapping_validates_geometry() {
        assert!(LayerMapping::conv(
            MapShape::new(1, 4, 4),
            2,
            3,
            vec![0; 5],
            LifHardwareParams::default()
        )
        .is_err());
        assert!(LayerMapping::conv(
            MapShape::new(1, 4, 4),
            2,
            2,
            vec![0; 8],
            LifHardwareParams::default()
        )
        .is_err());
        assert!(LayerMapping::conv(
            MapShape::new(0, 4, 4),
            2,
            3,
            vec![],
            LifHardwareParams::default()
        )
        .is_err());
    }

    #[test]
    fn dense_mapping_validates_geometry() {
        assert!(LayerMapping::dense(
            MapShape::new(1, 2, 2),
            3,
            vec![0; 12],
            LifHardwareParams::default()
        )
        .is_ok());
        assert!(LayerMapping::dense(
            MapShape::new(1, 2, 2),
            3,
            vec![0; 11],
            LifHardwareParams::default()
        )
        .is_err());
        assert!(LayerMapping::dense(
            MapShape::new(1, 2, 2),
            0,
            vec![],
            LifHardwareParams::default()
        )
        .is_err());
    }

    #[test]
    fn shapes_and_neuron_counts() {
        let m = conv_mapping();
        assert_eq!(m.input_shape(), MapShape::new(1, 4, 4));
        assert_eq!(m.output_shape(), MapShape::new(2, 4, 4));
        assert_eq!(m.total_output_neurons(), 32);
        assert_eq!(m.weight_sets(), 1);
        assert_eq!(m.params().threshold, 4);
    }

    #[test]
    fn map_shape_index_round_trips() {
        let s = MapShape::new(3, 4, 5);
        for c in 0..3 {
            for y in 0..4 {
                for x in 0..5 {
                    assert_eq!(s.position(s.index(c, y, x)), (c, y, x));
                }
            }
        }
    }

    #[test]
    fn centre_event_touches_full_receptive_field() {
        let m = conv_mapping();
        let event = Event::update(0, 0, 2, 2);
        let contributions = m.contributions(&event);
        // 9 positions per output channel, 2 channels.
        assert_eq!(contributions.len(), 18);
        assert!(contributions.iter().all(|c| c.weight == 1 || c.weight == 2));
        let ch0 = contributions.iter().filter(|c| c.weight == 1).count();
        assert_eq!(ch0, 9);
    }

    #[test]
    fn corner_event_touches_fewer_neurons() {
        let m = conv_mapping();
        let event = Event::update(0, 0, 0, 0);
        assert_eq!(m.contributions(&event).len(), 4 * 2);
    }

    #[test]
    fn range_restriction_filters_neurons() {
        let m = conv_mapping();
        let event = Event::update(0, 0, 2, 2);
        // Output channel 0 occupies neurons 0..16, channel 1 16..32.
        let first_channel = m.contributions_in_range(&event, 0..16);
        assert_eq!(first_channel.len(), 9);
        assert!(first_channel.iter().all(|c| c.weight == 1));
        let second_channel = m.contributions_in_range(&event, 16..32);
        assert_eq!(second_channel.len(), 9);
        assert!(second_channel.iter().all(|c| c.weight == 2));
    }

    #[test]
    fn empty_and_out_of_layer_ranges_yield_no_contributions() {
        let m = conv_mapping();
        let event = Event::update(0, 0, 2, 2);
        assert!(m.contributions_in_range(&event, 5..5).is_empty());
        assert!(m.contributions_in_range(&event, 40..64).is_empty());
        // An over-wide range behaves like the full layer (no u16 wrap-around
        // in the channel narrowing).
        assert_eq!(
            m.contributions_in_range(&event, 0..usize::MAX),
            m.contributions(&event)
        );
        // A range straddling the channel boundary picks up both planes: the
        // centre event touches position 5 of each 16-neuron plane.
        let straddling = m.contributions_in_range(&event, 5..22);
        assert!(straddling.iter().any(|c| c.weight == 1));
        assert!(straddling.iter().any(|c| c.neuron == 21 && c.weight == 2));
        assert!(straddling.iter().all(|c| (5..22).contains(&c.neuron)));
    }

    #[test]
    fn contributions_into_appends_to_a_reused_buffer() {
        let m = conv_mapping();
        let event = Event::update(0, 0, 2, 2);
        let mut buffer = vec![Contribution {
            neuron: 999,
            weight: 0,
        }];
        m.contributions_in_range_into(&event, 0..16, &mut buffer);
        assert_eq!(buffer.len(), 10);
        assert_eq!(buffer[0].neuron, 999);
        assert_eq!(&buffer[1..], m.contributions_in_range(&event, 0..16));
    }

    #[test]
    fn dense_contributions_cover_all_outputs() {
        let weights: Vec<i8> = (0..12).map(|i| (i % 5) as i8 - 2).collect();
        let m = LayerMapping::dense(
            MapShape::new(1, 2, 2),
            3,
            weights.clone(),
            LifHardwareParams::default(),
        )
        .unwrap();
        let event = Event::update(0, 0, 1, 0); // flattened input index 1
        let contributions = m.contributions(&event);
        assert_eq!(contributions.len(), 3);
        for (o, c) in contributions.iter().enumerate() {
            assert_eq!(c.neuron, o);
            assert_eq!(c.weight, weights[o * 4 + 1]);
        }
        assert_eq!(m.weight_sets(), 4);
    }

    #[test]
    fn event_validation_checks_input_shape() {
        let m = conv_mapping();
        assert!(m.validate_event(&Event::update(0, 0, 3, 3)).is_ok());
        assert!(m.validate_event(&Event::update(0, 0, 4, 0)).is_err());
        assert!(m.validate_event(&Event::update(0, 1, 0, 0)).is_err());
    }

    #[test]
    fn output_position_maps_back_to_channel_row_col() {
        let m = conv_mapping();
        assert_eq!(m.output_position(0), (0, 0, 0));
        assert_eq!(m.output_position(17), (1, 0, 1));
    }
}

//! Synaptic crossbar (C-XBAR).
//!
//! The C-XBAR routes event and weight streams between the streamers, the
//! slices and the collector (paper §III-D.1). Two modes exist: point-to-point
//! (one master to one slave, also used to load configuration) and broadcast
//! (one master to all slaves, with flow control waiting for every slave).
//! The simulator models the routing decision and the transfer cost; the
//! payload itself is handed over by the engine.

use serde::{Deserialize, Serialize};

/// Ports attached to the crossbar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum XbarPort {
    /// The input streamer (memory → engine).
    StreamerIn,
    /// The output streamer (engine → memory).
    StreamerOut,
    /// A slice, identified by its index.
    Slice(usize),
    /// The collector that merges slice outputs.
    Collector,
}

/// Routing mode of a transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum XbarMode {
    /// Single master to a single slave port.
    PointToPoint,
    /// Single master to every slice (flow-controlled broadcast).
    Broadcast,
}

/// The crossbar: tracks routed transfers and their cycle cost.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrossBar {
    num_slices: usize,
    broadcast_enabled: bool,
    transfers: u64,
    broadcast_transfers: u64,
    cycles: u64,
}

impl CrossBar {
    /// Creates a crossbar connected to `num_slices` slices.
    #[must_use]
    pub fn new(num_slices: usize, broadcast_enabled: bool) -> Self {
        Self {
            num_slices,
            broadcast_enabled,
            transfers: 0,
            broadcast_transfers: 0,
            cycles: 0,
        }
    }

    /// Number of slice ports.
    #[must_use]
    pub fn num_slices(&self) -> usize {
        self.num_slices
    }

    /// Routes one point-to-point transfer and returns its cycle cost (one
    /// cycle per hop with the ready/valid handshake).
    pub fn route(&mut self, _from: XbarPort, _to: XbarPort) -> u64 {
        self.transfers += 1;
        self.cycles += 1;
        1
    }

    /// Broadcasts one word from a master to every slice and returns the cycle
    /// cost: a single flow-controlled cycle when broadcast is enabled, or one
    /// point-to-point transfer per slice when it is not (the ablation case).
    pub fn broadcast(&mut self, _from: XbarPort) -> u64 {
        if self.broadcast_enabled {
            self.transfers += 1;
            self.broadcast_transfers += 1;
            self.cycles += 1;
            1
        } else {
            let cost = self.num_slices as u64;
            self.transfers += cost;
            self.cycles += cost;
            cost
        }
    }

    /// Total transfers routed (broadcasts count once when enabled).
    #[must_use]
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Broadcast transfers routed.
    #[must_use]
    pub fn broadcast_transfers(&self) -> u64 {
        self.broadcast_transfers
    }

    /// Total cycles spent routing.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Clears the counters (start of a new measured run).
    pub fn reset_counters(&mut self) {
        self.transfers = 0;
        self.broadcast_transfers = 0;
        self.cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_costs_one_cycle() {
        let mut xbar = CrossBar::new(8, true);
        let cost = xbar.route(XbarPort::StreamerIn, XbarPort::Slice(3));
        assert_eq!(cost, 1);
        assert_eq!(xbar.transfers(), 1);
        assert_eq!(xbar.cycles(), 1);
    }

    #[test]
    fn broadcast_is_one_cycle_when_enabled() {
        let mut xbar = CrossBar::new(8, true);
        assert_eq!(xbar.broadcast(XbarPort::StreamerIn), 1);
        assert_eq!(xbar.broadcast_transfers(), 1);
    }

    #[test]
    fn broadcast_degenerates_to_unicast_when_disabled() {
        let mut xbar = CrossBar::new(8, false);
        assert_eq!(xbar.broadcast(XbarPort::StreamerIn), 8);
        assert_eq!(xbar.transfers(), 8);
        assert_eq!(xbar.broadcast_transfers(), 0);
    }

    #[test]
    fn counters_reset() {
        let mut xbar = CrossBar::new(4, true);
        let _ = xbar.route(XbarPort::Collector, XbarPort::StreamerOut);
        let _ = xbar.broadcast(XbarPort::StreamerIn);
        xbar.reset_counters();
        assert_eq!(xbar.transfers(), 0);
        assert_eq!(xbar.cycles(), 0);
        assert_eq!(xbar.broadcast_transfers(), 0);
        assert_eq!(xbar.num_slices(), 4);
    }
}

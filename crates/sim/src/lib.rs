//! Cycle-approximate hardware simulator of the SNE accelerator.
//!
//! The simulator models the architecture of paper Fig. 2 at the granularity
//! the evaluation section reasons about:
//!
//! * [`cluster::Cluster`] — the TDM LIF datapath: 64 time-multiplexed
//!   neurons, 8-bit saturating state, double-buffered state memory (one
//!   update per cycle), per-cluster time-of-last-update (TLU) register,
//!   clock gating of idle units, output FIFO.
//! * [`slice::Slice`] — 16 clusters, the sequencer producing TDM addresses,
//!   the operation decoder, the address filter/shift that maps input events
//!   onto receptive fields, and the per-slice weight buffer.
//! * [`xbar::CrossBar`] — the synaptic crossbar routing event/weight streams
//!   between streamers, slices and the collector (point-to-point and
//!   broadcast modes).
//! * [`streamer::Streamer`] — the DMA engines with their 16-word FIFOs and a
//!   latency/contention [`memory::MemoryModel`].
//! * [`collector::Collector`] — arbitration of sparse slice outputs into a
//!   single stream.
//! * [`regfile::RegisterFile`] — the APB-style configuration interface.
//! * [`engine::Engine`] — the top level: maps eCNN layers onto slices
//!   ([`mapping::LayerMapping`]), runs the event stream and accounts cycles,
//!   synaptic operations and per-component activity ([`stats::CycleStats`]).
//!
//! The simulator is *functionally exact* with respect to the quantized LIF
//! dynamics (it produces bit-identical output events to the functional model
//! in `sne-model`) and *cycle-approximate* with respect to timing: it applies
//! the paper's published per-event costs (48 cycles per consumed input event,
//! one state update per cluster per cycle) rather than modelling every
//! pipeline register.
//!
//! # Example
//!
//! ```
//! use sne_sim::config::SneConfig;
//! use sne_sim::engine::Engine;
//!
//! let config = SneConfig::default();
//! let engine = Engine::new(config);
//! assert_eq!(engine.config().num_slices, 8);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cluster;
pub mod collector;
pub mod config;
pub mod decoder;
pub mod engine;
pub mod mapping;
pub mod memory;
pub mod regfile;
pub mod sequencer;
pub mod slice;
pub mod stats;
pub mod streamer;
pub mod trace;
pub mod xbar;

mod error;

pub use config::SneConfig;
pub use engine::{Engine, LayerRunOutput};
pub use error::SimError;
pub use mapping::{LayerMapping, LifHardwareParams};
pub use stats::CycleStats;

//! Cycle-approximate hardware simulator of the SNE accelerator.
//!
//! The simulator models the architecture of paper Fig. 2 at the granularity
//! the evaluation section reasons about:
//!
//! * [`cluster::Cluster`] — the TDM LIF datapath: 64 time-multiplexed
//!   neurons, 8-bit saturating state, double-buffered state memory (one
//!   update per cycle), per-cluster time-of-last-update (TLU) register,
//!   clock gating of idle units, output FIFO.
//! * [`slice::Slice`] — 16 clusters, the sequencer producing TDM addresses,
//!   the operation decoder, the address filter/shift that maps input events
//!   onto receptive fields, and the per-slice weight buffer.
//! * [`xbar::CrossBar`] — the synaptic crossbar routing event/weight streams
//!   between streamers, slices and the collector (point-to-point and
//!   broadcast modes).
//! * [`streamer::Streamer`] — the DMA engines with their 16-word FIFOs and a
//!   latency/contention [`memory::MemoryModel`].
//! * [`collector::Collector`] — arbitration of sparse slice outputs into a
//!   single stream.
//! * [`regfile::RegisterFile`] — the APB-style configuration interface.
//! * [`engine::Engine`] — the top level: maps eCNN layers onto slices
//!   ([`mapping::LayerMapping`]), runs the event stream and accounts cycles,
//!   synaptic operations and per-component activity ([`stats::CycleStats`]).
//! * [`worker`] — the per-slice worker unit a mapping pass decomposes into
//!   (the slice, its output record and its share of the persistent state),
//!   with no shared mutable state between units.
//! * [`plan::LayerPlan`] — the compiled sparse datapath: per-layer
//!   receptive-field lookup tables (border-class CSR rows for convolutions,
//!   transposed weight rows for dense layers) built once at configure time
//!   and consumed by the workers in place of the naive mapping walk.
//!   Host-time optimisation only — outputs and modelled cycles are
//!   bit-identical to the naive path.
//! * [`simd::Kernel`] — the blocked membrane kernel: span accumulation,
//!   TLU catch-up and fire scans over the per-slice structure-of-arrays
//!   membrane arena in fixed-width SIMD blocks (SSE2 on x86_64), with a
//!   manually unrolled scalar oracle that every path must match bit-exactly.
//! * [`exec::ExecStrategy`] — how those independent units execute on the
//!   host: sequentially or fanned out over scoped worker threads, with a
//!   deterministic slice-order reduction that keeps every strategy
//!   bit-exact.
//!
//! The simulator is *functionally exact* with respect to the quantized LIF
//! dynamics (it produces bit-identical output events to the functional model
//! in `sne-model`) and *cycle-approximate* with respect to timing: it applies
//! the paper's published per-event costs (48 cycles per consumed input event,
//! one state update per cluster per cycle) rather than modelling every
//! pipeline register.
//!
//! # Timing-model assumptions
//!
//! The cycle accounting in [`engine::Engine::run_layer`] rests on the
//! following assumptions, calibrated on the paper's published figures:
//!
//! 1. **Per-event cost.** One consumed `UPDATE_OP` costs
//!    [`SneConfig::cycles_per_event`] cycles (48 in the paper, i.e. 120 ns at
//!    the 400 MHz [`SneConfig::clock_mhz`]), during which every addressed
//!    cluster performs one state update per cycle. This is the paper's §IV-A
//!    throughput anchor, not a per-register pipeline model.
//! 2. **State memory ports.** The double-buffered latch state memory
//!    ([`SneConfig::double_buffered_state`], the paper's design) sustains one
//!    update per cycle; the single-ported ablation variant doubles the
//!    per-update cost (read cycle + write-back cycle).
//! 3. **Fire scans and the TLU.** A `FIRE_OP` costs one time-multiplexed scan
//!    of [`SneConfig::neurons_per_cluster`] cycles per cluster, unless every
//!    cluster can skip the scan via its time-of-last-update (TLU) register —
//!    the lazy-leak optimization — in which case it costs a single sequencer
//!    cycle. Lazy leak is *functionally* identical to an eager scan (checked
//!    by a property test).
//! 4. **Resets.** A `RST_OP` costs one cycle: all clusters clear their state
//!    in parallel.
//! 5. **Memory stalls.** Streamer DMAs move one packed 32-bit event word per
//!    cycle through 16-word FIFOs backed by a latency/contention
//!    [`memory::MemoryModel`]; when the memory cannot sustain the engine's
//!    consumption rate (or weights must be streamed per event because a
//!    layer's filters exceed [`SneConfig::weight_buffer_sets`]), the missing
//!    cycles are added to the total as stalls.
//! 6. **Clock gating.** Clusters not addressed by the current event are
//!    clock-gated; [`stats::CycleStats`] accounts active versus gated
//!    cluster-cycles, which is what makes the energy model in `sne-energy`
//!    activity-proportional.
//!
//! # Example
//!
//! ```
//! use sne_sim::config::SneConfig;
//! use sne_sim::engine::Engine;
//!
//! let config = SneConfig::default();
//! let engine = Engine::new(config);
//! assert_eq!(engine.config().num_slices, 8);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cluster;
pub mod collector;
pub mod config;
pub mod decoder;
pub mod engine;
pub mod exec;
pub mod mapping;
pub mod memory;
pub mod plan;
pub mod regfile;
pub mod sequencer;
pub mod simd;
pub mod slice;
pub mod state;
pub mod stats;
pub mod streamer;
pub mod trace;
pub mod worker;
pub mod xbar;

mod error;

pub use config::SneConfig;
pub use engine::{Engine, LayerRunOutput};
pub use error::SimError;
pub use exec::ExecStrategy;
pub use mapping::{LayerMapping, LifHardwareParams};
pub use plan::LayerPlan;
pub use simd::Kernel;
pub use state::LayerState;
pub use stats::CycleStats;

//! Event operation decoder.
//!
//! Before dispatching an input event to the clusters, a slice decodes the
//! event operation to decide how the datapath behaves (paper §III-D.4):
//! `RST_OP` activates every cluster and clears all membranes, `UPDATE_OP`
//! goes through the address filter, `FIRE_OP` triggers the threshold scan.

use serde::{Deserialize, Serialize};
use sne_event::{Event, EventOp};

/// Decoded slice action for one input event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SliceAction {
    /// Clear every neuron state of the slice.
    ResetAll {
        /// Timestamp at which the reset is issued.
        time: u32,
    },
    /// Update the neurons whose receptive field contains the event address.
    UpdateReceptiveField {
        /// Timestamp of the input spike.
        time: u32,
        /// Input channel of the spike (weight-set selector).
        channel: u16,
        /// Horizontal address of the spike.
        x: u16,
        /// Vertical address of the spike.
        y: u16,
    },
    /// Scan all neurons and emit output events for those above threshold.
    FireScan {
        /// Timestamp the scan closes.
        time: u32,
    },
}

/// Stateless decoder with a decode counter (for activity accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Decoder {
    decoded: u64,
}

impl Decoder {
    /// Creates a decoder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Decodes one event into the slice action it triggers.
    pub fn decode(&mut self, event: &Event) -> SliceAction {
        self.decoded += 1;
        match event.op {
            EventOp::Reset => SliceAction::ResetAll { time: event.t },
            EventOp::Update => SliceAction::UpdateReceptiveField {
                time: event.t,
                channel: event.ch,
                x: event.x,
                y: event.y,
            },
            EventOp::Fire => SliceAction::FireScan { time: event.t },
        }
    }

    /// Number of events decoded so far.
    #[must_use]
    pub fn decoded(&self) -> u64 {
        self.decoded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_all_three_operations() {
        let mut d = Decoder::new();
        assert_eq!(
            d.decode(&Event::reset(3)),
            SliceAction::ResetAll { time: 3 }
        );
        assert_eq!(
            d.decode(&Event::update(5, 1, 7, 9)),
            SliceAction::UpdateReceptiveField {
                time: 5,
                channel: 1,
                x: 7,
                y: 9
            }
        );
        assert_eq!(d.decode(&Event::fire(5)), SliceAction::FireScan { time: 5 });
        assert_eq!(d.decoded(), 3);
    }
}

//! External memory model seen by the streamers.
//!
//! The SNE is a memory-mapped peripheral; its DMAs fetch events and weights
//! from a system memory whose latency the 16-word FIFO must absorb (paper
//! §III-D.2). The model here is deliberately simple: a fixed access latency
//! plus a contention penalty when several streamers access the memory in the
//! same window — enough to exercise the FIFO sizing and produce realistic
//! stall accounting.

use serde::{Deserialize, Serialize};
use sne_event::PackedEvent;

/// A single-port memory with fixed latency and round-robin contention.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryModel {
    latency: u32,
    contention_penalty: u32,
    events: Vec<PackedEvent>,
    reads: u64,
    writes: u64,
}

impl MemoryModel {
    /// Creates a memory with the given access latency (cycles) and per-extra-
    /// requestor contention penalty (cycles).
    #[must_use]
    pub fn new(latency: u32, contention_penalty: u32) -> Self {
        Self {
            latency,
            contention_penalty,
            events: Vec::new(),
            reads: 0,
            writes: 0,
        }
    }

    /// Access latency in cycles for a single requestor.
    #[must_use]
    pub fn latency(&self) -> u32 {
        self.latency
    }

    /// Loads a packed event buffer into memory (replacing the current one).
    pub fn load_events(&mut self, events: Vec<PackedEvent>) {
        self.events = events;
    }

    /// Number of event words currently stored.
    #[must_use]
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Reads the word at `index`, returning the word and the cycles the read
    /// took given `concurrent_requestors` competing for the port.
    #[must_use]
    pub fn read(&mut self, index: usize, concurrent_requestors: u32) -> (Option<PackedEvent>, u32) {
        self.reads += 1;
        let extra = concurrent_requestors.saturating_sub(1) * self.contention_penalty;
        (self.events.get(index).copied(), self.latency + extra)
    }

    /// Appends a word (an output event written back by the collector path),
    /// returning the cycles the write took.
    #[must_use]
    pub fn write(&mut self, word: PackedEvent, concurrent_requestors: u32) -> u32 {
        self.writes += 1;
        self.events.push(word);
        let extra = concurrent_requestors.saturating_sub(1) * self.contention_penalty;
        self.latency + extra
    }

    /// Total reads performed.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total writes performed.
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

impl Default for MemoryModel {
    fn default() -> Self {
        Self::new(4, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_returns_stored_words_in_order() {
        let mut mem = MemoryModel::new(3, 1);
        mem.load_events(vec![PackedEvent(1), PackedEvent(2)]);
        assert_eq!(mem.event_count(), 2);
        let (word, cycles) = mem.read(0, 1);
        assert_eq!(word, Some(PackedEvent(1)));
        assert_eq!(cycles, 3);
        let (word, _) = mem.read(1, 1);
        assert_eq!(word, Some(PackedEvent(2)));
        let (missing, _) = mem.read(2, 1);
        assert_eq!(missing, None);
        assert_eq!(mem.reads(), 3);
    }

    #[test]
    fn contention_adds_latency() {
        let mut mem = MemoryModel::new(4, 2);
        let (_, single) = mem.read(0, 1);
        let (_, double) = mem.read(0, 2);
        assert_eq!(single, 4);
        assert_eq!(double, 6);
    }

    #[test]
    fn writes_append_and_count() {
        let mut mem = MemoryModel::new(2, 0);
        let cycles = mem.write(PackedEvent(7), 1);
        assert_eq!(cycles, 2);
        assert_eq!(mem.event_count(), 1);
        assert_eq!(mem.writes(), 1);
    }

    #[test]
    fn default_latency_matches_config_default() {
        assert_eq!(MemoryModel::default().latency(), 4);
    }
}

//! Compiled per-layer contribution tables — the configure-time half of the
//! sparse datapath.
//!
//! The naive event resolution in [`LayerMapping::contributions_in_range_into`]
//! re-derives the receptive field of every spike with a triple loop (output
//! channels × kernel × kernel) of index arithmetic, border clipping and range
//! checks. All of that is a pure function of the layer geometry and the
//! event's *border class* — for a stride-1 "same" convolution the (ky, kx)
//! clipping pattern takes only a handful of distinct shapes — so it can be
//! resolved once, at configure time, into flat lookup tables. This mirrors
//! what the hardware itself does: the address filter, address shift and
//! filter buffer of paper §III-D.4 are static per-layer dataflow programmed
//! through the register interface before any event streams in (the same
//! precompiled-dataflow discipline accelerators like Eyeriss and NullHop bake
//! into silicon).
//!
//! A [`LayerPlan`] holds, per border class, one *span descriptor* per
//! (output channel, kernel row): the receptive-field taps of a kernel row
//! land on **contiguous** output neurons, so a single base offset plus a run
//! of pre-resolved weights (in ascending-neuron order) describes them all.
//! Resolving an event is then one offset add per kernel row and one clipped
//! span accumulation per cluster — no per-tap index arithmetic at all.
//! Dense layers get an even simpler fast path: the weight matrix is
//! transposed once so the contribution weights of an input position are a
//! single contiguous row slice.
//!
//! The span *weights* are deduplicated: every border class of every input
//! channel reads one canonical **weight pool** (the kernel stored with its
//! `kx` axis reversed, so ascending-neuron span order is a contiguous pool
//! slice), and the per-class tables store only `u32` start offsets into it.
//! Materializing the weights per `(border class, input channel)` pair — the
//! layout this one replaced — blew the resident tables up by the border
//! class count times the channel count; [`LayerPlan::table_entries`] still
//! reports that logical size while [`LayerPlan::table_bytes`] reports the
//! deduplicated resident footprint.
//!
//! **The plan is a host-side optimisation only.** It changes neither the
//! modelled cycles nor any output: the naive mapping walk remains the
//! reference oracle, and `tests/plan_equivalence.rs` pins plan ≡ naive
//! bit-exactly (outputs, stats, traces, energy) over random geometries,
//! border events, multi-pass layers, chunked stateful resume and every
//! [`crate::exec::ExecStrategy`].

use sne_event::Event;

use crate::mapping::{Contribution, LayerMapping, MapShape};
use crate::simd::BLOCK_LANES;

/// The resolved view of one event against the plan: everything the fused
/// slice datapath ([`crate::slice::Slice::process_update_planned`]) needs to
/// integrate the event's contributions in place, and what
/// [`LayerPlan::contributions_in_range_into`] itself walks to materialize
/// them.
///
/// The engine resolves each `UPDATE_OP` **once per run** through
/// [`LayerPlan::event_row`] and hands the row to every slice worker of every
/// pass, so the border-class lookup is never repeated per slice.
#[derive(Debug, Clone, Copy)]
pub enum EventRow<'a> {
    /// Convolution: the border-class span table of the event.
    Conv {
        /// Offset of each kernel row's *lowest* neuron relative to the
        /// event's in-plane position, `rows_per_oc` per output channel.
        row_offsets: &'a [i32],
        /// Start of each span's weights inside [`EventRow::Conv::weights`],
        /// parallel to `row_offsets`: the taps of span `s` in
        /// ascending-neuron order are
        /// `weights[weight_starts[s]..][..taps_per_row]`, and tap `j`
        /// belongs to neuron `event_base + row_offsets[s] + j`.
        weight_starts: &'a [u32],
        /// The event channel's slice of the canonical deduplicated weight
        /// pool (`kx`-reversed kernel, one copy shared by every border
        /// class). The slice runs to the **end** of the pool — past the
        /// channel's own `out_channels * k * k` bytes — so the blocked
        /// kernel can always load a full weight vector from any tap (the
        /// pool carries [`BLOCK_LANES`] bytes of
        /// trailing padding for the last channel).
        weights: &'a [i8],
        /// Kernel rows per output channel (un-clipped `ky` taps).
        rows_per_oc: usize,
        /// Taps per kernel row (un-clipped `kx` taps).
        taps_per_row: usize,
        /// `y * width + x` of the event (in-plane position).
        event_base: i64,
        /// Neurons per output-channel plane.
        plane: usize,
        /// Total output neurons of the layer.
        total_neurons: usize,
    },
    /// Dense: the event's transposed weight row (`weights[o]` is output `o`).
    Dense {
        /// One weight per output neuron; like [`EventRow::Conv::weights`]
        /// the slice runs to the end of the (padded) transposed matrix, so
        /// only the first [`EventRow::Dense::outputs`] entries belong to
        /// this event.
        weights: &'a [i8],
        /// Number of output neurons (the row's logical length).
        outputs: usize,
    },
}

/// The span table of one border class — shared by every input channel (the
/// offsets and pool-relative starts do not depend on the channel).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct PlanRow {
    /// Lowest-neuron offset of each (output channel, kernel row) span.
    row_offsets: Vec<i32>,
    /// Start of each span's weights, relative to the event channel's slice
    /// of the weight pool (see [`EventRow::Conv`]).
    weight_starts: Vec<u32>,
    /// Kernel rows per output channel.
    rows_per_oc: usize,
    /// Taps per kernel row.
    taps_per_row: usize,
}

/// The layer-specific table layout.
#[derive(Debug, Clone, PartialEq)]
enum PlanKind {
    /// Stride-1 "same" convolution: span tables keyed by
    /// `(y class, x class, input channel)`.
    Conv {
        /// Neurons per output-channel plane (`height * width`).
        plane: usize,
        /// Input feature-map width (== output width).
        width: usize,
        /// Input channels.
        in_channels: usize,
        /// Border class of each input row (`y -> class`).
        y_class: Vec<u32>,
        /// Border class of each input column (`x -> class`).
        x_class: Vec<u32>,
        /// Number of distinct column classes (row stride of the class grid).
        x_classes: usize,
        /// Rows indexed by `yc * x_classes + xc` (channel-independent).
        rows: Vec<PlanRow>,
        /// Canonical deduplicated span weights: the kernel transposed to
        /// `[in_channel][out_channel][ky][k - 1 - kx]`, so every span is a
        /// contiguous slice in ascending-neuron order. One copy total,
        /// shared by all border classes.
        weight_pool: Vec<i8>,
        /// Pool stride of one input channel (`out_channels * k * k`).
        pool_stride: usize,
    },
    /// Fully-connected layer: one transposed weight row per input position.
    Dense {
        /// Input feature-map shape (for the position flattening).
        input: MapShape,
        /// Number of output neurons.
        outputs: usize,
        /// Weights transposed to `[in][out]`, so the contributions of one
        /// input position are a contiguous slice.
        transposed: Vec<i8>,
    },
}

/// A compiled, immutable contribution table for one [`LayerMapping`].
///
/// Built once at configure time ([`LayerPlan::build`]) and shared read-only
/// across timesteps, chunks, mapping passes, batch lanes and worker threads
/// (`LayerPlan` is `Send + Sync` plain data). The per-event resolution
/// ([`LayerPlan::contributions_in_range_into`]) is bit-exact with the naive
/// mapping walk, entry order included.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerPlan {
    kind: PlanKind,
    total_neurons: usize,
    /// Geometry digest of the source mapping (kind, shapes, kernel, LIF
    /// parameters — everything but the weights), checked by the engine on
    /// **every** run in O(1).
    geometry: u64,
    /// FNV-1a digest over the mapping's weights. Verified by
    /// [`LayerPlan::matches`] (session construction, tests) and by the
    /// engine's debug builds; it is O(weights), so release-mode runs check
    /// only the geometry digest.
    weights_digest: u64,
}

impl LayerPlan {
    /// Compiles the contribution tables for `mapping`.
    ///
    /// Cost is `O(border classes × in_channels × out_channels × kernel²)` for
    /// a convolution and `O(inputs × outputs)` (one transpose) for a dense
    /// layer — configure-time work in the compile-once/run-many split.
    ///
    /// # Panics
    ///
    /// Panics if the layer has 2^31 or more output neurons (far beyond any
    /// realizable state memory; the offsets are stored as `i32`).
    #[must_use]
    pub fn build(mapping: &LayerMapping) -> Self {
        let kind = match mapping {
            LayerMapping::Conv {
                input,
                out_channels,
                kernel,
                weights,
                ..
            } => build_conv(*input, *out_channels, *kernel, weights),
            LayerMapping::Dense {
                input,
                outputs,
                weights,
                ..
            } => build_dense(*input, *outputs, weights),
        };
        let (geometry, weights_digest) = fingerprints_of(mapping);
        Self {
            kind,
            total_neurons: mapping.total_output_neurons(),
            geometry,
            weights_digest,
        }
    }

    /// Returns `true` if this plan was compiled from exactly `mapping`
    /// (geometry, weights and LIF parameters). The weight digest makes
    /// running a stale plan against an edited mapping an error instead of
    /// silent corruption; it is O(weights), so sessions verify it once at
    /// construction while the engine's per-run check uses
    /// [`LayerPlan::matches_geometry`] (plus this full check in debug
    /// builds).
    #[must_use]
    pub fn matches(&self, mapping: &LayerMapping) -> bool {
        let (geometry, weights_digest) = fingerprints_of(mapping);
        self.geometry == geometry && self.weights_digest == weights_digest
    }

    /// O(1) variant of [`LayerPlan::matches`] covering everything but the
    /// weight values — the per-run hot-path check.
    #[must_use]
    pub fn matches_geometry(&self, mapping: &LayerMapping) -> bool {
        self.geometry == geometry_fingerprint_of(mapping)
    }

    /// The plan's `(geometry digest, weights digest)` pair — the stable
    /// per-layer fingerprint the durable-store layer folds into its
    /// artifact digest, so a parked session can never be resumed against a
    /// model with different weights or geometry.
    #[must_use]
    pub fn fingerprint(&self) -> (u64, u64) {
        (self.geometry, self.weights_digest)
    }

    /// Total number of precompiled tap weights the plan *resolves* — the
    /// logical table size, counting each (border class, input channel) span
    /// combination. Deduplication does not change this number; see
    /// [`LayerPlan::table_bytes`] for the resident footprint.
    #[must_use]
    pub fn table_entries(&self) -> usize {
        match &self.kind {
            PlanKind::Conv {
                rows, in_channels, ..
            } => {
                rows.iter()
                    .map(|r| r.weight_starts.len() * r.taps_per_row)
                    .sum::<usize>()
                    * in_channels
            }
            PlanKind::Dense { input, outputs, .. } => input.len() * outputs,
        }
    }

    /// Bytes actually resident in the compiled tables after span-descriptor
    /// deduplication: the canonical weight pool plus the per-border-class
    /// offset/start tables and the axis class indices.
    #[must_use]
    pub fn table_bytes(&self) -> usize {
        match &self.kind {
            PlanKind::Conv {
                rows,
                weight_pool,
                y_class,
                x_class,
                ..
            } => {
                weight_pool.len() * std::mem::size_of::<i8>()
                    + rows
                        .iter()
                        .map(|r| {
                            r.row_offsets.len() * std::mem::size_of::<i32>()
                                + r.weight_starts.len() * std::mem::size_of::<u32>()
                        })
                        .sum::<usize>()
                    + (y_class.len() + x_class.len()) * std::mem::size_of::<u32>()
            }
            PlanKind::Dense { transposed, .. } => transposed.len() * std::mem::size_of::<i8>(),
        }
    }

    /// Resolves the contributions of `event` restricted to the output
    /// neurons in `range`, appending them to `out` (not cleared first) —
    /// the drop-in, allocation-free replacement for
    /// [`LayerMapping::contributions_in_range_into`], emitting the identical
    /// contributions in the identical order.
    ///
    /// # Panics
    ///
    /// May panic if `event` lies outside the mapped input feature map; the
    /// engine validates every event before resolution, exactly as it does on
    /// the naive path.
    pub fn contributions_in_range_into(
        &self,
        event: &Event,
        range: std::ops::Range<usize>,
        out: &mut Vec<Contribution>,
    ) {
        if range.is_empty() {
            return;
        }
        match self.event_row(event) {
            EventRow::Conv {
                row_offsets,
                weight_starts,
                weights: pool,
                rows_per_oc,
                taps_per_row,
                event_base,
                plane,
                total_neurons,
            } => {
                let end = range.end.min(total_neurons);
                if range.start >= end {
                    return;
                }
                // Only the output channels whose planes intersect the range
                // can contribute (the slice's address filter).
                let first_oc = range.start / plane;
                let last_oc = (end - 1) / plane;
                for oc in first_oc..=last_oc {
                    for r in 0..rows_per_oc {
                        let span_index = oc * rows_per_oc + r;
                        let lowest = (event_base + i64::from(row_offsets[span_index])) as usize;
                        let weights = &pool[weight_starts[span_index] as usize..][..taps_per_row];
                        // Naive emission order walks kx ascending, i.e. the
                        // span's neurons *descending*.
                        for j in (0..taps_per_row).rev() {
                            let neuron = lowest + j;
                            if neuron >= range.start && neuron < end {
                                out.push(Contribution {
                                    neuron,
                                    weight: weights[j],
                                });
                            }
                        }
                    }
                }
            }
            EventRow::Dense { weights, outputs } => {
                let end = range.end.min(outputs);
                for (o, &weight) in weights.iter().enumerate().take(end).skip(range.start) {
                    out.push(Contribution { neuron: o, weight });
                }
            }
        }
    }

    /// Resolves the event's border class / input position to its table row —
    /// the shared lookup behind [`LayerPlan::contributions_in_range_into`]
    /// and the fused slice datapath (resolved once per event per run by the
    /// engine, consumed by every slice worker of every pass).
    ///
    /// # Panics
    ///
    /// May panic if `event` lies outside the mapped input feature map.
    #[inline]
    #[must_use]
    pub fn event_row(&self, event: &Event) -> EventRow<'_> {
        match &self.kind {
            PlanKind::Conv {
                plane,
                width,
                y_class,
                x_class,
                x_classes,
                rows,
                weight_pool,
                pool_stride,
                ..
            } => {
                let yc = y_class[usize::from(event.y)] as usize;
                let xc = x_class[usize::from(event.x)] as usize;
                let row = &rows[yc * x_classes + xc];
                let ch = usize::from(event.ch);
                EventRow::Conv {
                    row_offsets: &row.row_offsets,
                    weight_starts: &row.weight_starts,
                    weights: &weight_pool[ch * pool_stride..],
                    rows_per_oc: row.rows_per_oc,
                    taps_per_row: row.taps_per_row,
                    event_base: (usize::from(event.y) * width + usize::from(event.x)) as i64,
                    plane: *plane,
                    total_neurons: self.total_neurons,
                }
            }
            PlanKind::Dense {
                input,
                outputs,
                transposed,
            } => {
                let in_idx = input.index(event.ch, event.y, event.x);
                EventRow::Dense {
                    weights: &transposed[in_idx * outputs..],
                    outputs: *outputs,
                }
            }
        }
    }
}

/// Distinct clipped kernel ranges along one axis: `classes[class] = (lo, hi)`
/// is the inclusive valid tap range, `index[pos] = class`.
fn axis_classes(extent: u16, kernel: u16) -> (Vec<(u16, u16)>, Vec<u32>) {
    let half = kernel / 2;
    let mut classes: Vec<(u16, u16)> = Vec::new();
    let mut index = Vec::with_capacity(usize::from(extent));
    for pos in 0..i32::from(extent) {
        // Valid taps k satisfy 0 <= pos + half - k < extent.
        let lo = (pos + i32::from(half) - (i32::from(extent) - 1)).max(0) as u16;
        let hi = (pos + i32::from(half)).min(i32::from(kernel) - 1) as u16;
        let class = classes
            .iter()
            .position(|&c| c == (lo, hi))
            .unwrap_or_else(|| {
                classes.push((lo, hi));
                classes.len() - 1
            });
        index.push(class as u32);
    }
    (classes, index)
}

fn build_conv(input: MapShape, out_channels: u16, kernel: u16, weights: &[i8]) -> PlanKind {
    let half = i64::from(kernel / 2);
    let width = usize::from(input.width);
    let plane = usize::from(input.height) * width;
    let in_channels = usize::from(input.channels);
    let (y_ranges, y_class) = axis_classes(input.height, kernel);
    let (x_ranges, x_class) = axis_classes(input.width, kernel);
    let k = usize::from(kernel);
    // One canonical copy of every weight, `[ch][oc][ky][k - 1 - kx]`: the
    // kx reversal makes the ascending-neuron order of every span (which
    // walks kx *downwards*) a contiguous forward slice of the pool.
    let pool_stride = usize::from(out_channels) * k * k;
    // `BLOCK_LANES` trailing bytes of padding let the blocked kernel load a
    // full weight vector from any tap of any span (out-of-span lanes are
    // masked to zero before use, so the padding's value is irrelevant —
    // zero only for cleanliness).
    let mut weight_pool = vec![0i8; in_channels * pool_stride + BLOCK_LANES];
    for ch in 0..in_channels {
        for oc in 0..usize::from(out_channels) {
            for ky in 0..k {
                for rk in 0..k {
                    let kx = k - 1 - rk;
                    weight_pool[(ch * pool_stride) + (oc * k + ky) * k + rk] =
                        weights[((oc * in_channels + ch) * k + ky) * k + kx];
                }
            }
        }
    }
    // The span geometry (offsets, pool starts) depends only on the border
    // class, never on the input channel: one table per (y class, x class).
    let mut rows = Vec::with_capacity(y_ranges.len() * x_ranges.len());
    for &(ky_lo, ky_hi) in &y_ranges {
        for &(kx_lo, kx_hi) in &x_ranges {
            let rows_per_oc = usize::from(ky_hi - ky_lo + 1);
            let taps_per_row = usize::from(kx_hi - kx_lo + 1);
            let spans = usize::from(out_channels) * rows_per_oc;
            let mut row_offsets = Vec::with_capacity(spans);
            let mut weight_starts = Vec::with_capacity(spans);
            for oc in 0..usize::from(out_channels) {
                for ky in ky_lo..=ky_hi {
                    // The span's lowest neuron belongs to the largest kx
                    // tap; ascending neurons walk kx downwards.
                    let lowest = (oc * plane) as i64
                        + (half - i64::from(ky)) * width as i64
                        + (half - i64::from(kx_hi));
                    row_offsets.push(
                        i32::try_from(lowest).expect("layer exceeds the 2^31-neuron plan limit"),
                    );
                    let start = (oc * k + usize::from(ky)) * k + (k - 1 - usize::from(kx_hi));
                    weight_starts
                        .push(u32::try_from(start).expect("weight pool exceeds the u32 limit"));
                }
            }
            rows.push(PlanRow {
                row_offsets,
                weight_starts,
                rows_per_oc,
                taps_per_row,
            });
        }
    }
    PlanKind::Conv {
        plane,
        width,
        in_channels,
        y_class,
        x_class,
        x_classes: x_ranges.len(),
        rows,
        weight_pool,
        pool_stride,
    }
}

fn build_dense(input: MapShape, outputs: u16, weights: &[i8]) -> PlanKind {
    let inputs = input.len();
    let outputs = usize::from(outputs);
    // Same `BLOCK_LANES` trailing padding as the conv pool: the blocked
    // kernel may load one full weight vector straddling a row's end.
    let mut transposed = vec![0i8; inputs * outputs + BLOCK_LANES];
    for o in 0..outputs {
        for i in 0..inputs {
            transposed[i * outputs + o] = weights[o * inputs + i];
        }
    }
    PlanKind::Dense {
        input,
        outputs,
        transposed,
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_feed(hash: &mut u64, byte: u8) {
    *hash ^= u64::from(byte);
    *hash = hash.wrapping_mul(FNV_PRIME);
}

fn fnv_feed_u16(hash: &mut u64, v: u16) {
    for b in v.to_le_bytes() {
        fnv_feed(hash, b);
    }
}

/// O(1) FNV-1a digest over the mapping's discriminant, geometry and LIF
/// parameters (no weights).
fn geometry_fingerprint_of(mapping: &LayerMapping) -> u64 {
    let (tag, input, major, kernel, params) = match mapping {
        LayerMapping::Conv {
            input,
            out_channels,
            kernel,
            params,
            ..
        } => (1u8, input, *out_channels, *kernel, params),
        LayerMapping::Dense {
            input,
            outputs,
            params,
            ..
        } => (2u8, input, *outputs, 0u16, params),
    };
    let mut hash = FNV_OFFSET;
    fnv_feed(&mut hash, tag);
    fnv_feed_u16(&mut hash, input.channels);
    fnv_feed_u16(&mut hash, input.height);
    fnv_feed_u16(&mut hash, input.width);
    fnv_feed_u16(&mut hash, major);
    fnv_feed_u16(&mut hash, kernel);
    fnv_feed_u16(&mut hash, params.leak as u16);
    fnv_feed_u16(&mut hash, params.threshold as u16);
    hash
}

/// `(geometry digest, weight digest)` of a mapping.
fn fingerprints_of(mapping: &LayerMapping) -> (u64, u64) {
    let weights = match mapping {
        LayerMapping::Conv { weights, .. } | LayerMapping::Dense { weights, .. } => weights,
    };
    let mut weight_hash = FNV_OFFSET;
    for &w in weights {
        fnv_feed(&mut weight_hash, w as u8);
    }
    (geometry_fingerprint_of(mapping), weight_hash)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::LifHardwareParams;

    fn conv(input: MapShape, out_channels: u16, kernel: u16, seed: i8) -> LayerMapping {
        let count = usize::from(out_channels)
            * usize::from(input.channels)
            * usize::from(kernel)
            * usize::from(kernel);
        let weights: Vec<i8> = (0..count)
            .map(|i| ((i as i64 * 7 + i64::from(seed)) % 15) as i8 - 7)
            .collect();
        LayerMapping::conv(
            input,
            out_channels,
            kernel,
            weights,
            LifHardwareParams::default(),
        )
        .unwrap()
    }

    fn dense(input: MapShape, outputs: u16, seed: i8) -> LayerMapping {
        let count = usize::from(outputs) * input.len();
        let weights: Vec<i8> = (0..count)
            .map(|i| ((i as i64 * 5 + i64::from(seed)) % 15) as i8 - 7)
            .collect();
        LayerMapping::dense(input, outputs, weights, LifHardwareParams::default()).unwrap()
    }

    fn assert_plan_matches_naive(mapping: &LayerMapping, ranges: &[std::ops::Range<usize>]) {
        let plan = LayerPlan::build(mapping);
        assert!(plan.matches(mapping));
        let input = mapping.input_shape();
        for ch in 0..input.channels {
            for y in 0..input.height {
                for x in 0..input.width {
                    let event = Event::update(0, ch, x, y);
                    for range in ranges {
                        let mut naive = Vec::new();
                        mapping.contributions_in_range_into(&event, range.clone(), &mut naive);
                        let mut planned = Vec::new();
                        plan.contributions_in_range_into(&event, range.clone(), &mut planned);
                        assert_eq!(
                            planned, naive,
                            "event ({ch},{y},{x}) range {range:?} diverged"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn conv_plan_matches_naive_for_every_position_and_range() {
        let mapping = conv(MapShape::new(2, 5, 4), 3, 3, 1);
        let total = mapping.total_output_neurons();
        let ranges = [
            0..total,
            0..7,
            7..33,
            20..total,
            5..5,
            total..total + 10,
            0..usize::MAX,
        ];
        assert_plan_matches_naive(&mapping, &ranges);
    }

    #[test]
    fn kernel_wider_than_map_still_matches() {
        // Every position is a border position here: 4x3 map, 5x5 kernel.
        let mapping = conv(MapShape::new(1, 4, 3), 2, 5, 3);
        let total = mapping.total_output_neurons();
        assert_plan_matches_naive(&mapping, &[0..total, 3..9, 0..usize::MAX]);
    }

    #[test]
    fn one_by_one_kernel_is_a_single_tap() {
        let mapping = conv(MapShape::new(2, 3, 3), 2, 1, 0);
        let plan = LayerPlan::build(&mapping);
        // One class per axis, one tap per output channel, two table rows
        // (one per input channel).
        assert_eq!(plan.table_entries(), 2 * 2);
        let full = 0..mapping.total_output_neurons();
        assert_plan_matches_naive(&mapping, std::slice::from_ref(&full));
    }

    #[test]
    fn dense_plan_matches_naive() {
        let mapping = dense(MapShape::new(2, 3, 2), 7, 2);
        assert_plan_matches_naive(&mapping, &[0..7, 0..3, 3..7, 2..5, 0..usize::MAX, 9..12]);
    }

    #[test]
    fn border_classes_collapse_the_interior() {
        // 8x8 map, 3x3 kernel: 3 row classes x 3 column classes.
        let (classes, index) = axis_classes(8, 3);
        assert_eq!(classes.len(), 3);
        assert_eq!(index[0], index.iter().copied().min().unwrap());
        assert!(index[1..7].iter().all(|&c| c == index[1]));
        let mapping = conv(MapShape::new(1, 8, 8), 2, 3, 5);
        let plan = LayerPlan::build(&mapping);
        // 9 class pairs x 1 input channel rows, 2 output channels x up to
        // 9 taps each.
        assert!(plan.table_entries() > 0);
        assert_plan_matches_naive(&mapping, &[0..128, 17..40]);
    }

    #[test]
    fn dedupe_keeps_the_logical_size_but_shrinks_the_resident_tables() {
        // 16 input channels x 9 border classes share one weight pool: the
        // logical table counts every (class, channel) span combination,
        // while the resident bytes hold each weight exactly once and the
        // span geometry once per border class (it is channel-independent).
        let mapping = conv(MapShape::new(16, 8, 8), 6, 3, 2);
        let plan = LayerPlan::build(&mapping);
        let pool = 16 * 6 * 3 * 3; // one canonical copy of every weight
        assert!(plan.table_entries() > pool, "logical size kept");
        assert!(
            plan.table_bytes() < plan.table_entries(),
            "resident tables ({} B) must undercut the naive materialization \
             ({} weights)",
            plan.table_bytes(),
            plan.table_entries()
        );
        // Dense plans have nothing to dedupe: bytes == entries plus the
        // kernel's vector-load padding.
        let dense = LayerPlan::build(&dense(MapShape::new(2, 3, 2), 7, 2));
        assert_eq!(dense.table_bytes(), dense.table_entries() + BLOCK_LANES);
    }

    #[test]
    fn fingerprint_detects_any_edit() {
        let mapping = conv(MapShape::new(1, 4, 4), 2, 3, 1);
        let plan = LayerPlan::build(&mapping);
        assert!(plan.matches(&mapping));
        assert!(plan.matches_geometry(&mapping));

        // Different weights: same geometry digest, different full digest.
        let other_weights = conv(MapShape::new(1, 4, 4), 2, 3, 2);
        assert!(!plan.matches(&other_weights));
        assert!(plan.matches_geometry(&other_weights));

        let other_geometry = conv(MapShape::new(1, 4, 5), 2, 3, 1);
        assert!(!plan.matches(&other_geometry));
        assert!(!plan.matches_geometry(&other_geometry));

        let dense_twin = dense(MapShape::new(1, 4, 4), 2, 1);
        assert!(!plan.matches(&dense_twin));
        assert!(!plan.matches_geometry(&dense_twin));
    }

    #[test]
    fn plans_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LayerPlan>();
    }
}

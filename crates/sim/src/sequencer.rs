//! TDM neuron address sequencer.
//!
//! The sequencer orchestrates the synchronous execution of all clusters in a
//! slice by providing the address of the current TDM neuron update (paper
//! §III-D.4). For an `UPDATE_OP` it scans the receptive-field addresses the
//! address filter selected; for a `FIRE_OP` it scans all TDM neurons so each
//! one can be checked against the threshold.

use serde::{Deserialize, Serialize};

/// Generates the per-cycle TDM neuron addresses of one slice operation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sequencer {
    neurons_per_cluster: usize,
    issued_addresses: u64,
}

impl Sequencer {
    /// Creates a sequencer for clusters with `neurons_per_cluster` TDM neurons.
    #[must_use]
    pub fn new(neurons_per_cluster: usize) -> Self {
        Self {
            neurons_per_cluster,
            issued_addresses: 0,
        }
    }

    /// Number of TDM neurons addressed per cluster.
    #[must_use]
    pub fn neurons_per_cluster(&self) -> usize {
        self.neurons_per_cluster
    }

    /// Addresses scanned for an `UPDATE_OP` whose receptive field covers the
    /// given local neuron addresses. One address is issued per cycle.
    pub fn update_scan(&mut self, receptive_field: &[usize]) -> Vec<usize> {
        let addresses: Vec<usize> = receptive_field
            .iter()
            .copied()
            .filter(|&a| a < self.neurons_per_cluster)
            .collect();
        self.issued_addresses += addresses.len() as u64;
        addresses
    }

    /// Addresses scanned for a `FIRE_OP` (all TDM neurons of the cluster).
    pub fn fire_scan(&mut self) -> Vec<usize> {
        self.issued_addresses += self.neurons_per_cluster as u64;
        (0..self.neurons_per_cluster).collect()
    }

    /// Total addresses issued so far.
    #[must_use]
    pub fn issued_addresses(&self) -> u64 {
        self.issued_addresses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fire_scan_covers_all_neurons() {
        let mut s = Sequencer::new(64);
        let scan = s.fire_scan();
        assert_eq!(scan.len(), 64);
        assert_eq!(scan[0], 0);
        assert_eq!(scan[63], 63);
        assert_eq!(s.issued_addresses(), 64);
    }

    #[test]
    fn update_scan_filters_out_of_range_addresses() {
        let mut s = Sequencer::new(64);
        let scan = s.update_scan(&[3, 10, 64, 100]);
        assert_eq!(scan, vec![3, 10]);
        assert_eq!(s.issued_addresses(), 2);
    }

    #[test]
    fn issued_addresses_accumulate() {
        let mut s = Sequencer::new(8);
        let _ = s.update_scan(&[0, 1, 2]);
        let _ = s.fire_scan();
        assert_eq!(s.issued_addresses(), 11);
        assert_eq!(s.neurons_per_cluster(), 8);
    }
}

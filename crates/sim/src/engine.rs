//! The top-level SNE engine.
//!
//! The engine owns the slices, the crossbar, the streamers, the collector and
//! the register file, and executes one mapped layer at a time over an input
//! event stream (the time-multiplexed operating mode of paper §III-D.5; the
//! layer-per-slice pipelined mode is built on top of this in the `sne` crate
//! by chaining layer runs through memory).
//!
//! Timing model (cycle-approximate, calibrated on the paper's figures):
//!
//! * one consumed `UPDATE_OP` costs [`SneConfig::cycles_per_event`] cycles
//!   (48 → 120 ns at 400 MHz), during which every addressed cluster performs
//!   one state update per cycle;
//! * a `FIRE_OP` costs one TDM scan of [`SneConfig::neurons_per_cluster`]
//!   cycles unless every cluster skipped it via the TLU, in which case it
//!   costs a single sequencer cycle;
//! * a `RST_OP` costs one cycle (all clusters clear in parallel);
//! * streamer stalls (memory slower than the consumption rate) add to the
//!   total cycle count.

use sne_event::stream::Geometry;
use sne_event::{Event, EventFormat, EventOp, EventStream};

use crate::collector::Collector;
use crate::config::SneConfig;
use crate::mapping::LayerMapping;
use crate::memory::MemoryModel;
use crate::regfile::{Register, RegisterFile};
use crate::slice::Slice;
use crate::state::LayerState;
use crate::stats::CycleStats;
use crate::streamer::Streamer;
use crate::trace::{Trace, TraceRecord};
use crate::xbar::{CrossBar, XbarPort};
use crate::SimError;

/// Result of running one layer on the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerRunOutput {
    /// Output events produced by the layer (spikes of the output feature map).
    pub output: EventStream,
    /// Cycle and activity accounting of the run.
    pub stats: CycleStats,
    /// Cycles attributed to each input timestep (`timestep_cycles[t]` sums to
    /// `stats.total_cycles`); DMA fill stalls are charged to the first
    /// timestep and drain stalls to the last. This per-timestep schedule is
    /// what the pipelined layer-per-slice mode overlaps across layers.
    pub timestep_cycles: Vec<u64>,
}

/// The SNE engine.
#[derive(Debug)]
pub struct Engine {
    config: SneConfig,
    regfile: RegisterFile,
    xbar: CrossBar,
    collector: Collector,
    slices: Vec<Slice>,
    memory: MemoryModel,
    format: EventFormat,
    trace: Trace,
}

impl Engine {
    /// Creates an engine with the given configuration.
    #[must_use]
    pub fn new(config: SneConfig) -> Self {
        let slices = (0..config.num_slices)
            .map(|_| Slice::new(&config))
            .collect();
        Self {
            regfile: RegisterFile::new(),
            xbar: CrossBar::new(config.num_slices, config.broadcast),
            collector: Collector::new(config.num_slices),
            slices,
            memory: MemoryModel::new(config.memory_latency, 2),
            format: EventFormat::default(),
            trace: Trace::disabled(),
            config,
        }
    }

    /// The engine configuration.
    #[must_use]
    pub fn config(&self) -> &SneConfig {
        &self.config
    }

    /// The configuration register file (for host-style programming).
    #[must_use]
    pub fn regfile_mut(&mut self) -> &mut RegisterFile {
        &mut self.regfile
    }

    /// Enables execution tracing with the given record capacity.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Trace::with_capacity(capacity);
    }

    /// The execution trace collected so far.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Number of mapping passes needed to run `mapping` on this engine.
    #[must_use]
    pub fn passes_for(&self, mapping: &LayerMapping) -> usize {
        let per_pass = self.config.num_slices * self.config.neurons_per_slice();
        mapping.total_output_neurons().div_ceil(per_pass)
    }

    /// Runs one mapped layer over an input event stream.
    ///
    /// Neuron state starts at rest (the stream's op sequence opens with a
    /// `RST_OP`) and is discarded at the end of the run; use
    /// [`Engine::run_layer_stateful`] to persist state across invocations.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid, the mapping does not
    /// fit the filter buffer, or an event addresses a position outside the
    /// mapped input feature map.
    pub fn run_layer(
        &mut self,
        mapping: &LayerMapping,
        input: &EventStream,
    ) -> Result<LayerRunOutput, SimError> {
        self.run_layer_inner(mapping, input, None, false)
    }

    /// Runs one mapped layer over a chunk of an input event stream, keeping
    /// the neuron state in `state` so a continuous feed can be consumed in
    /// chunks.
    ///
    /// With `resume == false` the run starts from rest exactly like
    /// [`Engine::run_layer`] (the op sequence opens with a `RST_OP`), and the
    /// state left behind by the chunk is saved into `state`. With
    /// `resume == true` the engine first restores the membranes and TLU
    /// bookkeeping from `state`, consumes the chunk *without* an initial
    /// reset, and saves the updated state back — pushing the chunks of a
    /// stream one by one is then functionally identical to consuming the
    /// whole stream at once.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `state` was not sized for this
    /// engine configuration and mapping, plus the same errors as
    /// [`Engine::run_layer`].
    pub fn run_layer_stateful(
        &mut self,
        mapping: &LayerMapping,
        input: &EventStream,
        state: &mut LayerState,
        resume: bool,
    ) -> Result<LayerRunOutput, SimError> {
        if !state.matches(&self.config, mapping) {
            return Err(SimError::InvalidConfig {
                name: "layer state",
                reason: "state was sized for a different engine configuration or mapping"
                    .to_owned(),
            });
        }
        self.run_layer_inner(mapping, input, Some(state), resume)
    }

    fn run_layer_inner(
        &mut self,
        mapping: &LayerMapping,
        input: &EventStream,
        mut state: Option<&mut LayerState>,
        resume: bool,
    ) -> Result<LayerRunOutput, SimError> {
        self.config.validate()?;
        // When the layer's weight sets fit the per-slice filter buffer they
        // are loaded once per pass; otherwise (large fully-connected layers)
        // the weights are streamed from memory per event, which costs extra
        // memory words and, if the fetch exceeds the event-consumption
        // window, stall cycles.
        let weights_resident = mapping.weight_sets() <= self.config.weight_buffer_sets;
        for event in input.iter().filter(|e| e.is_spike()) {
            mapping.validate_event(event)?;
        }
        self.program_registers(mapping, input)?;
        self.xbar.reset_counters();
        self.collector.reset_counters();

        let params = mapping.params();
        // A resumed chunk continues from saved state: no initial RST_OP.
        let op_sequence = if resume {
            input.to_op_sequence_continuing()
        } else {
            input.to_op_sequence()
        };
        let timesteps = input.geometry().timesteps;
        // Per-timestep cycle attribution, the layer's schedule for the
        // pipelined mapping mode.
        let mut timestep_cycles = vec![0u64; timesteps as usize];
        // The double-buffered latch state memory sustains one state update per
        // cycle; a single-ported memory (the ablation case) needs a read cycle
        // and a write-back cycle per update.
        let state_access_factor: u64 = if self.config.double_buffered_state {
            1
        } else {
            2
        };

        let mut stats = CycleStats::new();
        // Model the input DMA: pack the operation sequence into memory words
        // and stream them in through the 16-word FIFO. If the stream does not
        // fit the 32-bit format (e.g. very long synthetic runs), fall back to
        // pure word counting.
        let (in_reads, in_stalls) = self.model_input_dma(&op_sequence);

        let total_neurons = mapping.total_output_neurons();
        let neurons_per_slice = self.config.neurons_per_slice();
        let per_pass = self.config.num_slices * neurons_per_slice;
        let passes = total_neurons.div_ceil(per_pass);

        let out_shape = mapping.output_shape();
        let mut output_events: Vec<Event> = Vec::new();

        for pass in 0..passes {
            stats.passes += 1;
            self.trace.push(TraceRecord::PassStart {
                pass,
                channels: (0..out_shape.channels)
                    .filter(|&c| {
                        let first = out_shape.index(c, 0, 0);
                        first >= pass * per_pass && first < (pass + 1) * per_pass
                    })
                    .collect(),
            });
            // Assign neuron ranges to slices for this pass.
            let mut active_slices = Vec::new();
            for (s, slice) in self.slices.iter_mut().enumerate() {
                let base = pass * per_pass + s * neurons_per_slice;
                let count = neurons_per_slice.min(total_neurons.saturating_sub(base));
                slice.configure_pass(base.min(total_neurons), count);
                if resume {
                    if let Some(st) = state.as_deref_mut() {
                        slice.import_state(st.slice_state(pass, s));
                    }
                }
                if count > 0 {
                    active_slices.push(s);
                }
            }
            stats.streamer_reads += in_reads;
            stats.stall_cycles += in_stalls;
            stats.total_cycles += in_stalls;
            timestep_cycles[0] += in_stalls;

            let mut queues: Vec<Vec<Event>> = vec![Vec::new(); self.config.num_slices];
            for op in &op_sequence {
                match op.op {
                    EventOp::Reset => {
                        let _ = self.xbar.broadcast(XbarPort::StreamerIn);
                        for &s in &active_slices {
                            self.slices[s].reset();
                        }
                        stats.reset_cycles += 1;
                        stats.total_cycles += 1;
                        timestep_cycles[op.t as usize] += 1;
                        self.trace.push(TraceRecord::Reset { time: op.t });
                    }
                    EventOp::Update => {
                        let _ = self.xbar.broadcast(XbarPort::StreamerIn);
                        stats.input_events += 1;
                        let event_cost =
                            u64::from(self.config.cycles_per_event) * state_access_factor;
                        stats.update_cycles += event_cost;
                        stats.total_cycles += event_cost;
                        timestep_cycles[op.t as usize] += event_cost;
                        let mut event_ops = 0u64;
                        for &s in &active_slices {
                            let range = self.slices[s].assigned_range();
                            let contributions = mapping.contributions_in_range(op, range);
                            let outcome = self.slices[s].process_update(
                                &contributions,
                                params,
                                self.config.clock_gating,
                            );
                            stats.synaptic_ops += outcome.synaptic_ops;
                            event_ops += outcome.synaptic_ops;
                            stats.active_cluster_cycles +=
                                outcome.active_clusters * u64::from(self.config.cycles_per_event);
                            stats.gated_cluster_cycles +=
                                outcome.gated_clusters * u64::from(self.config.cycles_per_event);
                        }
                        if !weights_resident {
                            // Weights streamed per event: 8 packed 4-bit
                            // weights per 32-bit memory word (Fig. 1).
                            let words = event_ops.div_ceil(8);
                            stats.streamer_reads += words;
                            let budget =
                                u64::from(self.config.cycles_per_event) * state_access_factor;
                            if words > budget {
                                let stall = words - budget;
                                stats.stall_cycles += stall;
                                stats.total_cycles += stall;
                                timestep_cycles[op.t as usize] += stall;
                            }
                        }
                        self.trace.push(TraceRecord::EventConsumed {
                            time: op.t,
                            channel: op.ch,
                            address: (op.x, op.y),
                            synaptic_ops: event_ops,
                        });
                    }
                    EventOp::Fire => {
                        let mut any_scanned = false;
                        let mut emitted = 0u64;
                        for &s in &active_slices {
                            let outcome =
                                self.slices[s].process_fire(params, self.config.tlu_enabled);
                            any_scanned |= outcome.scanned_clusters > 0;
                            stats.tlu_skipped_updates +=
                                outcome.skipped_clusters * self.config.neurons_per_cluster as u64;
                            for neuron in outcome.fired {
                                let (c, y, x) = mapping.output_position(neuron);
                                queues[s].push(Event::update(op.t, c, x, y));
                                emitted += 1;
                            }
                        }
                        let fire_cost = if any_scanned {
                            self.config.neurons_per_cluster as u64 * state_access_factor
                        } else {
                            1
                        };
                        // State updates performed during an executed scan are
                        // synaptic-side bookkeeping, not SOPs; only cycle cost
                        // is accounted here.
                        stats.fire_cycles += fire_cost;
                        stats.total_cycles += fire_cost;
                        timestep_cycles[op.t as usize] += fire_cost;
                        stats.output_events += emitted;
                        let merged = self.collector.merge(&mut queues);
                        for _ in &merged {
                            let _ = self.xbar.route(XbarPort::Collector, XbarPort::StreamerOut);
                        }
                        output_events.extend(merged);
                        self.trace.push(TraceRecord::FireScan {
                            time: op.t,
                            emitted,
                        });
                    }
                }
            }
            // Persist the state this pass leaves behind so the next chunk can
            // resume from it.
            if let Some(st) = state.as_deref_mut() {
                for (s, slice) in self.slices.iter().enumerate() {
                    slice.export_state(st.slice_state_mut(pass, s));
                }
            }
        }

        // Model the output DMA.
        let (out_writes, out_stalls) = self.model_output_dma(&output_events);
        stats.streamer_writes += out_writes;
        stats.stall_cycles += out_stalls;
        stats.total_cycles += out_stalls;
        timestep_cycles[timesteps as usize - 1] += out_stalls;
        stats.xbar_transfers = self.xbar.transfers();
        stats.collector_events = self.collector.merged_events();

        let geometry = Geometry::new(
            out_shape.width.max(1),
            out_shape.height.max(1),
            out_shape.channels.max(1),
            timesteps,
        )
        .map_err(|e| SimError::MalformedOpSequence(e.to_string()))?;
        let mut output = EventStream::with_geometry(geometry);
        output.extend(output_events);
        output.sort_by_time();

        Ok(LayerRunOutput {
            output,
            stats,
            timestep_cycles,
        })
    }

    fn program_registers(
        &mut self,
        mapping: &LayerMapping,
        input: &EventStream,
    ) -> Result<(), SimError> {
        let params = mapping.params();
        let in_shape = mapping.input_shape();
        let kernel = match mapping {
            LayerMapping::Conv { kernel, .. } => u32::from(*kernel),
            LayerMapping::Dense { .. } => 0,
        };
        let features = u32::from(self.config.tlu_enabled)
            | (u32::from(self.config.clock_gating) << 1)
            | (u32::from(self.config.broadcast) << 2);
        self.regfile.set(Register::Control, 1)?;
        self.regfile.set(Register::Leak, params.leak as u32)?;
        self.regfile
            .set(Register::Threshold, params.threshold as u32)?;
        self.regfile
            .set(Register::ActiveSlices, self.config.num_slices as u32)?;
        self.regfile
            .set(Register::LayerWidth, u32::from(in_shape.width))?;
        self.regfile
            .set(Register::LayerHeight, u32::from(in_shape.height))?;
        self.regfile
            .set(Register::LayerChannels, u32::from(in_shape.channels))?;
        self.regfile.set(Register::KernelSize, kernel)?;
        self.regfile.set(Register::Features, features)?;
        self.regfile.set(Register::EventBase, input.len() as u32)?;
        Ok(())
    }

    /// Streams the operation sequence through the input DMA model, returning
    /// `(words_read, stall_cycles)`.
    fn model_input_dma(&mut self, ops: &[Event]) -> (u64, u64) {
        match self.format.pack_all(ops) {
            Ok(words) => {
                self.memory.load_events(words);
                let mut streamer = Streamer::new(
                    self.format,
                    self.config.streamer_fifo_depth,
                    self.config.cycles_per_event,
                );
                match streamer.stream_in(&mut self.memory, self.config.num_streamers as u32) {
                    Ok(result) => (result.words_read, result.stall_cycles),
                    Err(_) => (ops.len() as u64, 0),
                }
            }
            Err(_) => (ops.len() as u64, 0),
        }
    }

    /// Streams the produced output events through the output DMA model,
    /// returning `(words_written, stall_cycles)`.
    fn model_output_dma(&mut self, events: &[Event]) -> (u64, u64) {
        let mut memory = MemoryModel::new(self.config.memory_latency, 2);
        let mut streamer = Streamer::new(
            self.format,
            self.config.streamer_fifo_depth,
            self.config.cycles_per_event,
        );
        match streamer.stream_out(events, &mut memory, self.config.num_streamers as u32) {
            Ok(result) => (result.words_written, result.stall_cycles),
            Err(_) => (events.len() as u64, 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{LifHardwareParams, MapShape};

    fn small_config() -> SneConfig {
        SneConfig {
            num_slices: 2,
            clusters_per_slice: 4,
            neurons_per_cluster: 8,
            ..SneConfig::default()
        }
    }

    /// 1 input channel, 4x4 map, 2 output channels, all-ones 3x3 kernels,
    /// threshold 1 so every touched neuron fires at the end of the timestep.
    fn conv_mapping(threshold: i16) -> LayerMapping {
        let mut weights = vec![1i8; 9];
        weights.extend(vec![1i8; 9]);
        LayerMapping::conv(
            MapShape::new(1, 4, 4),
            2,
            3,
            weights,
            LifHardwareParams { leak: 0, threshold },
        )
        .unwrap()
    }

    fn single_spike_stream() -> EventStream {
        let mut s = EventStream::new(4, 4, 1, 3);
        s.push(Event::update(0, 0, 2, 2)).unwrap();
        s
    }

    #[test]
    fn single_event_produces_receptive_field_spikes() {
        let mut engine = Engine::new(small_config());
        let mapping = conv_mapping(1);
        let result = engine.run_layer(&mapping, &single_spike_stream()).unwrap();
        // A centre spike with all-ones kernel and threshold 1 makes the full
        // 3x3 receptive field fire in both output channels.
        assert_eq!(result.output.spike_count(), 18);
        assert_eq!(result.stats.input_events, 1);
        assert_eq!(result.stats.synaptic_ops, 18);
        assert!(result.output.iter().all(|e| e.t == 0));
    }

    #[test]
    fn cycle_count_follows_events_and_timesteps() {
        let mut engine = Engine::new(small_config());
        let mapping = conv_mapping(100); // nothing fires
        let mut stream = EventStream::new(4, 4, 1, 10);
        for t in 0..5 {
            stream.push(Event::update(t, 0, 1, 1)).unwrap();
        }
        let result = engine.run_layer(&mapping, &stream).unwrap();
        let cfg = small_config();
        // 5 events * 48 cycles of update time.
        assert_eq!(
            result.stats.update_cycles,
            5 * u64::from(cfg.cycles_per_event)
        );
        // 5 timesteps execute a scan (8 cycles), 5 idle timesteps cost 1 cycle.
        assert_eq!(result.stats.fire_cycles, 5 * 8 + 5);
        assert_eq!(result.stats.reset_cycles, 1);
        assert_eq!(result.stats.output_events, 0);
    }

    #[test]
    fn energy_proportionality_cycles_scale_with_events() {
        let mut engine = Engine::new(small_config());
        let mapping = conv_mapping(100);
        let run = |engine: &mut Engine, n: u32| {
            let mut stream = EventStream::new(4, 4, 1, 50);
            for t in 0..n {
                stream.push(Event::update(t % 50, 0, 1, 1)).unwrap();
            }
            engine.run_layer(&mapping, &stream).unwrap().stats
        };
        let few = run(&mut engine, 10);
        let many = run(&mut engine, 40);
        let delta_cycles = many.update_cycles - few.update_cycles;
        assert_eq!(delta_cycles, 30 * 48);
        assert!(many.synaptic_ops > few.synaptic_ops);
    }

    #[test]
    fn multi_pass_when_layer_exceeds_capacity() {
        // Engine capacity: 2 slices * 32 neurons = 64; layer has 2*16=32 per
        // channel * 8 channels = 128 neurons -> 2 passes.
        let mut engine = Engine::new(small_config());
        let weights = vec![1i8; 8 * 9];
        let mapping = LayerMapping::conv(
            MapShape::new(1, 4, 4),
            8,
            3,
            weights,
            LifHardwareParams {
                leak: 0,
                threshold: 1,
            },
        )
        .unwrap();
        assert_eq!(engine.passes_for(&mapping), 2);
        let result = engine.run_layer(&mapping, &single_spike_stream()).unwrap();
        assert_eq!(result.stats.passes, 2);
        // All 8 output channels observed the spike.
        assert_eq!(result.output.spike_count(), 8 * 9);
    }

    #[test]
    fn non_resident_weights_are_streamed_per_event() {
        // A dense layer with 16 input positions needs 16 weight sets; with a
        // 2-set filter buffer the weights are streamed from memory per event,
        // which shows up as additional streamer reads.
        let mapping = |_: ()| {
            LayerMapping::dense(
                MapShape::new(1, 4, 4),
                4,
                vec![1; 64],
                LifHardwareParams::default(),
            )
            .unwrap()
        };
        let mut stream = EventStream::new(4, 4, 1, 2);
        stream.push(Event::update(0, 0, 1, 1)).unwrap();
        stream.push(Event::update(1, 0, 2, 2)).unwrap();

        let mut small_buffer = Engine::new(SneConfig {
            weight_buffer_sets: 2,
            ..small_config()
        });
        let mut big_buffer = Engine::new(SneConfig {
            weight_buffer_sets: 256,
            ..small_config()
        });
        let streamed = small_buffer.run_layer(&mapping(()), &stream).unwrap();
        let resident = big_buffer.run_layer(&mapping(()), &stream).unwrap();
        assert!(streamed.stats.streamer_reads > resident.stats.streamer_reads);
        // Functional results are identical either way.
        assert_eq!(streamed.output, resident.output);
    }

    #[test]
    fn out_of_range_events_are_rejected() {
        let mut engine = Engine::new(small_config());
        let mapping = conv_mapping(1);
        let mut stream = EventStream::new(8, 8, 1, 2);
        stream.push(Event::update(0, 0, 7, 7)).unwrap();
        assert!(matches!(
            engine.run_layer(&mapping, &stream),
            Err(SimError::EventOutOfRange { .. })
        ));
    }

    #[test]
    fn registers_reflect_the_programmed_layer() {
        let mut engine = Engine::new(small_config());
        let mapping = conv_mapping(5);
        let _ = engine.run_layer(&mapping, &single_spike_stream()).unwrap();
        assert_eq!(engine.regfile_mut().get(Register::Threshold).unwrap(), 5);
        assert_eq!(engine.regfile_mut().get(Register::KernelSize).unwrap(), 3);
        assert_eq!(engine.regfile_mut().get(Register::LayerWidth).unwrap(), 4);
        assert_eq!(engine.regfile_mut().get(Register::ActiveSlices).unwrap(), 2);
    }

    #[test]
    fn trace_records_pass_events_and_fires() {
        let mut engine = Engine::new(small_config());
        engine.enable_trace(128);
        let mapping = conv_mapping(1);
        let _ = engine.run_layer(&mapping, &single_spike_stream()).unwrap();
        let records = engine.trace().records();
        assert!(records
            .iter()
            .any(|r| matches!(r, TraceRecord::PassStart { .. })));
        assert!(records
            .iter()
            .any(|r| matches!(r, TraceRecord::EventConsumed { .. })));
        assert!(records
            .iter()
            .any(|r| matches!(r, TraceRecord::FireScan { .. })));
    }

    #[test]
    fn dense_layer_runs_end_to_end() {
        let mut engine = Engine::new(small_config());
        // 2x2 input, 4 outputs, weight 2 everywhere, threshold 2: every input
        // spike makes all outputs fire at the end of its timestep.
        let mapping = LayerMapping::dense(
            MapShape::new(1, 2, 2),
            4,
            vec![2; 16],
            LifHardwareParams {
                leak: 0,
                threshold: 2,
            },
        )
        .unwrap();
        let mut stream = EventStream::new(2, 2, 1, 3);
        stream.push(Event::update(1, 0, 0, 0)).unwrap();
        let result = engine.run_layer(&mapping, &stream).unwrap();
        assert_eq!(result.output.spike_count(), 4);
        assert!(result.output.iter().all(|e| e.t == 1));
        assert_eq!(result.stats.synaptic_ops, 4);
    }

    #[test]
    fn invalid_config_is_rejected_at_run_time() {
        let mut engine = Engine::new(SneConfig {
            num_slices: 0,
            ..SneConfig::default()
        });
        let mapping = conv_mapping(1);
        assert!(engine.run_layer(&mapping, &single_spike_stream()).is_err());
    }

    #[test]
    fn timestep_cycles_sum_to_total() {
        let mut engine = Engine::new(small_config());
        let mapping = conv_mapping(2);
        let mut stream = EventStream::new(4, 4, 1, 6);
        for t in 0..6 {
            stream.push(Event::update(t, 0, 2, 2)).unwrap();
        }
        let result = engine.run_layer(&mapping, &stream).unwrap();
        assert_eq!(result.timestep_cycles.len(), 6);
        assert_eq!(
            result.timestep_cycles.iter().sum::<u64>(),
            result.stats.total_cycles
        );
        // Every timestep consumed one event, so each carries real work.
        assert!(result.timestep_cycles.iter().all(|&c| c > 0));
    }

    #[test]
    fn stateful_chunks_match_a_single_whole_stream_run() {
        let mapping = |_: ()| {
            // Leak 1 + threshold 7 make the result depend on state carried
            // across timesteps (and therefore across chunk boundaries).
            let mut weights = vec![2i8; 9];
            weights.extend(vec![3i8; 9]);
            LayerMapping::conv(
                MapShape::new(1, 4, 4),
                2,
                3,
                weights,
                LifHardwareParams {
                    leak: 1,
                    threshold: 7,
                },
            )
            .unwrap()
        };
        let mut stream = EventStream::new(4, 4, 1, 12);
        for t in 0..12 {
            stream.push(Event::update(t, 0, (t % 4) as u16, 1)).unwrap();
            if t % 3 == 0 {
                stream.push(Event::update(t, 0, 2, 2)).unwrap();
            }
        }

        let mut whole_engine = Engine::new(small_config());
        let whole = whole_engine.run_layer(&mapping(()), &stream).unwrap();

        let mut chunk_engine = Engine::new(small_config());
        let mut state = LayerState::new(&small_config(), &mapping(()));
        let mut events = Vec::new();
        for (i, (start, end)) in [(0, 5), (5, 6), (6, 12)].into_iter().enumerate() {
            let chunk = stream.window(start, end);
            let run = chunk_engine
                .run_layer_stateful(&mapping(()), &chunk, &mut state, i > 0)
                .unwrap();
            events.extend(run.output.into_events().into_iter().map(|e| Event {
                t: e.t + start,
                ..e
            }));
        }
        assert_eq!(events, whole.output.as_slice());
    }

    #[test]
    fn stateful_multi_pass_chunks_match_whole_run() {
        // 8 output channels on a 2-slice engine: two mapping passes, so the
        // persistent state must round-trip per (pass, slice) slot.
        let weights = vec![1i8; 8 * 9];
        let mapping = LayerMapping::conv(
            MapShape::new(1, 4, 4),
            8,
            3,
            weights,
            LifHardwareParams {
                leak: 0,
                threshold: 2,
            },
        )
        .unwrap();
        let mut stream = EventStream::new(4, 4, 1, 8);
        for t in 0..8 {
            stream.push(Event::update(t, 0, 2, 2)).unwrap();
        }
        let mut whole_engine = Engine::new(small_config());
        let whole = whole_engine.run_layer(&mapping, &stream).unwrap();

        let mut chunk_engine = Engine::new(small_config());
        let mut state = LayerState::new(&small_config(), &mapping);
        assert_eq!(state.passes(), 2);
        let mut spikes = 0;
        for (i, (start, end)) in [(0, 3), (3, 8)].into_iter().enumerate() {
            let chunk = stream.window(start, end);
            let run = chunk_engine
                .run_layer_stateful(&mapping, &chunk, &mut state, i > 0)
                .unwrap();
            spikes += run.output.spike_count();
        }
        assert_eq!(spikes, whole.output.spike_count());
    }

    #[test]
    fn mismatched_layer_state_is_rejected() {
        let mut engine = Engine::new(small_config());
        let mapping = conv_mapping(1);
        let mut state = LayerState::new(&SneConfig::default(), &mapping);
        assert!(matches!(
            engine.run_layer_stateful(&mapping, &single_spike_stream(), &mut state, false),
            Err(SimError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn non_resumed_stateful_run_matches_stateless_run() {
        let mapping = conv_mapping(3);
        let stream = single_spike_stream();
        let mut a = Engine::new(small_config());
        let mut b = Engine::new(small_config());
        let mut state = LayerState::new(&small_config(), &mapping);
        let stateless = a.run_layer(&mapping, &stream).unwrap();
        let stateful = b
            .run_layer_stateful(&mapping, &stream, &mut state, false)
            .unwrap();
        assert_eq!(stateless, stateful);
        // The state left behind is the end-of-stream state, not rest: the
        // spike at t=0 fired and reset, later timesteps stayed idle.
        assert!(state.membrane(0).is_some());
    }

    #[test]
    fn tlu_reduces_fire_cycles_on_sparse_streams() {
        let sparse_stream = || {
            let mut s = EventStream::new(4, 4, 1, 100);
            s.push(Event::update(0, 0, 2, 2)).unwrap();
            s
        };
        let mapping = conv_mapping(100);
        let mut with_tlu = Engine::new(SneConfig {
            tlu_enabled: true,
            ..small_config()
        });
        let mut without_tlu = Engine::new(SneConfig {
            tlu_enabled: false,
            ..small_config()
        });
        let a = with_tlu
            .run_layer(&mapping, &sparse_stream())
            .unwrap()
            .stats;
        let b = without_tlu
            .run_layer(&mapping, &sparse_stream())
            .unwrap()
            .stats;
        assert!(a.fire_cycles < b.fire_cycles);
        assert!(a.tlu_skipped_updates > 0);
        assert_eq!(b.tlu_skipped_updates, 0);
    }
}

//! The top-level SNE engine.
//!
//! The engine owns the slices, the crossbar, the streamers, the collector and
//! the register file, and executes one mapped layer at a time over an input
//! event stream (the time-multiplexed operating mode of paper §III-D.5; the
//! layer-per-slice pipelined mode is built on top of this in the `sne` crate
//! by chaining layer runs through memory).
//!
//! Timing model (cycle-approximate, calibrated on the paper's figures):
//!
//! * one consumed `UPDATE_OP` costs [`SneConfig::cycles_per_event`] cycles
//!   (48 → 120 ns at 400 MHz), during which every addressed cluster performs
//!   one state update per cycle;
//! * a `FIRE_OP` costs one TDM scan of [`SneConfig::neurons_per_cluster`]
//!   cycles unless every cluster skipped it via the TLU, in which case it
//!   costs a single sequencer cycle;
//! * a `RST_OP` costs one cycle (all clusters clear in parallel);
//! * streamer stalls (memory slower than the consumption rate) add to the
//!   total cycle count.

use sne_event::stream::Geometry;
use sne_event::{Event, EventFormat, EventOp, EventStream};

use crate::collector::Collector;
use crate::config::SneConfig;
use crate::exec::ExecStrategy;
use crate::mapping::LayerMapping;
use crate::memory::MemoryModel;
use crate::plan::{EventRow, LayerPlan};
use crate::regfile::{Register, RegisterFile};
use crate::simd::Kernel;
use crate::slice::Slice;
use crate::state::LayerState;
use crate::stats::CycleStats;
use crate::streamer::Streamer;
use crate::trace::{Trace, TraceRecord};
use crate::worker::{run_slice_pass, SliceRecord, SliceTask, WorkerContext};
use crate::xbar::{CrossBar, XbarPort};
use crate::SimError;

/// Result of running one layer on the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerRunOutput {
    /// Output events produced by the layer (spikes of the output feature map).
    pub output: EventStream,
    /// Cycle and activity accounting of the run.
    pub stats: CycleStats,
    /// Cycles attributed to each input timestep (`timestep_cycles[t]` sums to
    /// `stats.total_cycles`); DMA fill stalls are charged to the first
    /// timestep and drain stalls to the last. This per-timestep schedule is
    /// what the pipelined layer-per-slice mode overlaps across layers.
    pub timestep_cycles: Vec<u64>,
}

/// The SNE engine.
#[derive(Debug)]
pub struct Engine {
    config: SneConfig,
    regfile: RegisterFile,
    xbar: CrossBar,
    collector: Collector,
    slices: Vec<Slice>,
    memory: MemoryModel,
    format: EventFormat,
    trace: Trace,
    /// How the per-slice worker units of a pass execute on the host.
    exec: ExecStrategy,
    /// Per-slice worker records, reused across timesteps, passes and runs
    /// (the hot path performs no per-timestep allocation).
    records: Vec<SliceRecord>,
    /// Per-slice read cursors of the reduction, reused across passes.
    cursors: Vec<usize>,
    /// The membrane kernel every slice runs (see [`Kernel`]); host time
    /// only, bit-exact either way.
    kernel: Kernel,
    /// Whether [`SneConfig::validate`] already passed for the owned (and
    /// immutable) configuration: the per-run check then collapses to one
    /// boolean test instead of re-walking the config on every chunk.
    config_validated: bool,
    /// Reusable op-sequence buffer: each run rebuilds the sequence for its
    /// input chunk in place, so steady-state streaming does not reallocate
    /// it.
    op_scratch: Vec<Event>,
}

impl Engine {
    /// Minimum work size — op-sequence entries × slices — below which a pass
    /// takes the sequential path even under a parallel [`ExecStrategy`]:
    /// scoped-thread spawns would cost more than they save on tiny passes
    /// (e.g. a streamed chunk through a small dense classifier). The gate is
    /// a pure wall-clock heuristic; results are bit-identical either way.
    /// Exposed so tests sizing workloads to exercise the threaded fan-out
    /// can assert they cross it.
    ///
    /// Calibrated against thread-spawn cost (~tens of µs per scoped worker):
    /// with the compiled-plan datapath a worker unit burns well under 100 ns
    /// per op-sequence entry, so passes below ~1k units lose more to spawning
    /// than they can win back — the low-core regression `BENCH_parallel.json`
    /// exposed (engine_slices 0.48x at 8 threads on a 1-core host).
    pub const MIN_PARALLEL_UNITS: usize = 1024;

    /// Creates an engine with the given configuration (sequential execution).
    #[must_use]
    pub fn new(config: SneConfig) -> Self {
        Self::with_exec(config, ExecStrategy::Sequential)
    }

    /// Creates an engine that runs its per-slice worker units with the given
    /// [`ExecStrategy`]. The strategy affects wall-clock time only: results,
    /// statistics and traces are bit-identical for every strategy.
    #[must_use]
    pub fn with_exec(config: SneConfig, exec: ExecStrategy) -> Self {
        let slices = (0..config.num_slices)
            .map(|_| Slice::new(&config))
            .collect();
        Self {
            regfile: RegisterFile::new(),
            xbar: CrossBar::new(config.num_slices, config.broadcast),
            collector: Collector::new(config.num_slices),
            slices,
            memory: MemoryModel::new(config.memory_latency, 2),
            format: EventFormat::default(),
            trace: Trace::disabled(),
            exec,
            records: Vec::new(),
            cursors: Vec::new(),
            kernel: Kernel::auto(),
            config_validated: false,
            op_scratch: Vec::new(),
            config,
        }
    }

    /// The membrane kernel the engine's slices run.
    #[must_use]
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Selects the membrane kernel for every slice (takes effect on the next
    /// run). Host wall-clock choice only: outputs, statistics, traces and
    /// persisted state are bit-identical for every kernel.
    pub fn set_kernel(&mut self, kernel: Kernel) {
        self.kernel = kernel;
        for slice in &mut self.slices {
            slice.set_kernel(kernel);
        }
    }

    /// The engine configuration.
    #[must_use]
    pub fn config(&self) -> &SneConfig {
        &self.config
    }

    /// The execution strategy of the per-slice worker units.
    #[must_use]
    pub fn exec(&self) -> ExecStrategy {
        self.exec
    }

    /// Changes the execution strategy (takes effect on the next run).
    pub fn set_exec(&mut self, exec: ExecStrategy) {
        self.exec = exec;
    }

    /// The configuration register file (for host-style programming).
    #[must_use]
    pub fn regfile_mut(&mut self) -> &mut RegisterFile {
        &mut self.regfile
    }

    /// Enables execution tracing with the given record capacity.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Trace::with_capacity(capacity);
    }

    /// The execution trace collected so far.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Number of mapping passes needed to run `mapping` on this engine.
    #[must_use]
    pub fn passes_for(&self, mapping: &LayerMapping) -> usize {
        let per_pass = self.config.num_slices * self.config.neurons_per_slice();
        mapping.total_output_neurons().div_ceil(per_pass)
    }

    /// Runs one mapped layer over an input event stream.
    ///
    /// Neuron state starts at rest (the stream's op sequence opens with a
    /// `RST_OP`) and is discarded at the end of the run; use
    /// [`Engine::run_layer_stateful`] to persist state across invocations.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid, the mapping does not
    /// fit the filter buffer, or an event addresses a position outside the
    /// mapped input feature map.
    pub fn run_layer(
        &mut self,
        mapping: &LayerMapping,
        input: &EventStream,
    ) -> Result<LayerRunOutput, SimError> {
        self.run_layer_inner(mapping, None, input, None, false)
    }

    /// [`Engine::run_layer`] on the compiled sparse datapath: the per-event
    /// receptive-field resolution uses the precompiled contribution tables of
    /// `plan` instead of re-deriving them through the mapping. Outputs,
    /// statistics, traces and modelled cycles are **bit-identical** to the
    /// naive path — the plan only moves host time.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `plan` was not built from
    /// exactly `mapping`, plus the same errors as [`Engine::run_layer`].
    pub fn run_layer_planned(
        &mut self,
        mapping: &LayerMapping,
        plan: &LayerPlan,
        input: &EventStream,
    ) -> Result<LayerRunOutput, SimError> {
        self.check_plan(mapping, plan)?;
        self.run_layer_inner(mapping, Some(plan), input, None, false)
    }

    /// Runs one mapped layer over a chunk of an input event stream, keeping
    /// the neuron state in `state` so a continuous feed can be consumed in
    /// chunks.
    ///
    /// With `resume == false` the run starts from rest exactly like
    /// [`Engine::run_layer`] (the op sequence opens with a `RST_OP`), and the
    /// state left behind by the chunk is saved into `state`. With
    /// `resume == true` the engine first restores the membranes and TLU
    /// bookkeeping from `state`, consumes the chunk *without* an initial
    /// reset, and saves the updated state back — pushing the chunks of a
    /// stream one by one is then functionally identical to consuming the
    /// whole stream at once.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `state` was not sized for this
    /// engine configuration and mapping, plus the same errors as
    /// [`Engine::run_layer`].
    pub fn run_layer_stateful(
        &mut self,
        mapping: &LayerMapping,
        input: &EventStream,
        state: &mut LayerState,
        resume: bool,
    ) -> Result<LayerRunOutput, SimError> {
        self.check_state(mapping, state)?;
        self.run_layer_inner(mapping, None, input, Some(state), resume)
    }

    /// [`Engine::run_layer_stateful`] on the compiled sparse datapath (see
    /// [`Engine::run_layer_planned`]); bit-identical to the naive path.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `plan` was not built from
    /// exactly `mapping`, plus the same errors as
    /// [`Engine::run_layer_stateful`].
    pub fn run_layer_stateful_planned(
        &mut self,
        mapping: &LayerMapping,
        plan: &LayerPlan,
        input: &EventStream,
        state: &mut LayerState,
        resume: bool,
    ) -> Result<LayerRunOutput, SimError> {
        self.check_plan(mapping, plan)?;
        self.check_state(mapping, state)?;
        self.run_layer_inner(mapping, Some(plan), input, Some(state), resume)
    }

    fn check_state(&self, mapping: &LayerMapping, state: &LayerState) -> Result<(), SimError> {
        if !state.matches(&self.config, mapping) {
            return Err(SimError::InvalidConfig {
                name: "layer state",
                reason: "state was sized for a different engine configuration or mapping"
                    .to_owned(),
            });
        }
        Ok(())
    }

    fn check_plan(&self, mapping: &LayerMapping, plan: &LayerPlan) -> Result<(), SimError> {
        // Geometry is checked on every run in O(1); the O(weights) digest is
        // verified where plans are built/shared (sessions, tests) and in
        // debug builds here.
        if !plan.matches_geometry(mapping) {
            return Err(SimError::InvalidConfig {
                name: "layer plan",
                reason: "plan was compiled from a different layer mapping".to_owned(),
            });
        }
        debug_assert!(
            plan.matches(mapping),
            "plan weights diverged from the mapping"
        );
        Ok(())
    }

    /// Executes a layer run as a sequence of mapping passes, each decomposed
    /// into independent per-slice worker units ([`crate::worker`]) fanned out
    /// by the engine's [`ExecStrategy`] and merged back by a deterministic
    /// slice-order reduction ([`Engine::reduce_pass`]). The strategy affects
    /// wall-clock time only — outputs, statistics and traces are
    /// bit-identical for every strategy.
    fn run_layer_inner(
        &mut self,
        mapping: &LayerMapping,
        plan: Option<&LayerPlan>,
        input: &EventStream,
        mut state: Option<&mut LayerState>,
        resume: bool,
    ) -> Result<LayerRunOutput, SimError> {
        // The configuration is owned and immutable after construction, so
        // one successful validation holds for the engine's lifetime.
        if !self.config_validated {
            self.config.validate()?;
            self.config_validated = true;
        }
        // When the layer's weight sets fit the per-slice filter buffer they
        // are loaded once per pass; otherwise (large fully-connected layers)
        // the weights are streamed from memory per event, which costs extra
        // memory words and, if the fetch exceeds the event-consumption
        // window, stall cycles.
        let weights_resident = mapping.weight_sets() <= self.config.weight_buffer_sets;
        for event in input.iter().filter(|e| e.is_spike()) {
            mapping.validate_event(event)?;
        }
        self.program_registers(mapping, input)?;
        self.xbar.reset_counters();
        self.collector.reset_counters();

        // A resumed chunk continues from saved state: no initial RST_OP.
        // Built into the engine's reusable scratch buffer (taken out for the
        // borrow, put back at the end) so steady-state streaming does not
        // reallocate it per chunk.
        let mut op_sequence = std::mem::take(&mut self.op_scratch);
        if resume {
            input.to_op_sequence_continuing_into(&mut op_sequence);
        } else {
            input.to_op_sequence_into(&mut op_sequence);
        }
        let timesteps = input.geometry().timesteps;
        // Per-timestep cycle attribution, the layer's schedule for the
        // pipelined mapping mode.
        let mut timestep_cycles = vec![0u64; timesteps as usize];
        // The double-buffered latch state memory sustains one state update per
        // cycle; a single-ported memory (the ablation case) needs a read cycle
        // and a write-back cycle per update.
        let state_access_factor: u64 = if self.config.double_buffered_state {
            1
        } else {
            2
        };

        let mut stats = CycleStats::new();
        // Model the input DMA: pack the operation sequence into memory words
        // and stream them in through the 16-word FIFO. If the stream does not
        // fit the 32-bit format (e.g. very long synthetic runs), fall back to
        // pure word counting.
        let (in_reads, in_stalls) = self.model_input_dma(&op_sequence);

        let total_neurons = mapping.total_output_neurons();
        let neurons_per_slice = self.config.neurons_per_slice();
        let per_pass = self.config.num_slices * neurons_per_slice;
        let passes = total_neurons.div_ceil(per_pass);

        let out_shape = mapping.output_shape();
        let mut output_events: Vec<Event> = Vec::new();

        // The worker records are long-lived buffers: sized once per engine
        // configuration, cleared (capacity kept) on every pass.
        if self.records.len() != self.config.num_slices {
            self.records = vec![SliceRecord::default(); self.config.num_slices];
        }
        // Resolve every UPDATE_OP's plan row once per run; the slice workers
        // of every pass then index instead of repeating the border-class
        // lookup per (event, slice, pass).
        let event_rows: Option<Vec<EventRow<'_>>> = plan.map(|p| {
            op_sequence
                .iter()
                .filter(|op| op.op == EventOp::Update)
                .map(|op| p.event_row(op))
                .collect()
        });
        let ctx = WorkerContext {
            mapping,
            rows: event_rows.as_deref(),
            ops: &op_sequence,
            params: mapping.params(),
            clock_gating: self.config.clock_gating,
            tlu_enabled: self.config.tlu_enabled,
            neurons_per_cluster: self.config.neurons_per_cluster as u64,
            resume,
        };

        for pass in 0..passes {
            stats.passes += 1;
            if self.trace.is_enabled() {
                self.trace.push(TraceRecord::PassStart {
                    pass,
                    channels: (0..out_shape.channels)
                        .filter(|&c| {
                            let first = out_shape.index(c, 0, 0);
                            first >= pass * per_pass && first < (pass + 1) * per_pass
                        })
                        .collect(),
                });
            }

            // Fan out: one worker unit per slice — the slice, its record and
            // its disjoint share of the persistent state. No shared mutable
            // state, so the units can run on any host schedule.
            let mut state_shares: Vec<Option<&mut [crate::cluster::ClusterState]>> =
                match state.as_deref_mut() {
                    Some(st) => st.pass_slices_mut(pass).map(Some).collect(),
                    None => (0..self.config.num_slices).map(|_| None).collect(),
                };
            let mut tasks: Vec<SliceTask<'_>> = self
                .slices
                .iter_mut()
                .zip(self.records.iter_mut())
                .zip(state_shares.drain(..))
                .enumerate()
                .map(|(s, ((slice, record), share))| {
                    let base = pass * per_pass + s * neurons_per_slice;
                    let count = neurons_per_slice.min(total_neurons.saturating_sub(base));
                    SliceTask {
                        slice,
                        record,
                        state: share,
                        base: base.min(total_neurons),
                        count,
                    }
                })
                .collect();
            // Fanning a pass out only pays when there is enough work to
            // amortize the scoped-thread spawns; tiny passes (e.g. the final
            // dense classifier of a streamed chunk) take the sequential path.
            // Results are bit-identical either way — the gate only moves
            // host wall-clock time.
            let exec = if op_sequence.len() * self.config.num_slices < Self::MIN_PARALLEL_UNITS {
                ExecStrategy::Sequential
            } else {
                self.exec
            };
            exec.run(&mut tasks, |_, task| run_slice_pass(task, &ctx));
            drop(tasks);

            stats.streamer_reads += in_reads;
            stats.stall_cycles += in_stalls;
            stats.total_cycles += in_stalls;
            timestep_cycles[0] += in_stalls;

            // Merge: a single deterministic walk over the op sequence in
            // slice order reproduces the crossbar broadcasts, the collector
            // arbitration and the cycle accounting of the hardware exactly.
            self.reduce_pass(
                &op_sequence,
                weights_resident,
                state_access_factor,
                &mut stats,
                &mut timestep_cycles,
                &mut output_events,
            );
        }

        // Hand the op-sequence buffer back for the next run.
        self.op_scratch = op_sequence;

        // Model the output DMA.
        let (out_writes, out_stalls) = self.model_output_dma(&output_events);
        stats.streamer_writes += out_writes;
        stats.stall_cycles += out_stalls;
        stats.total_cycles += out_stalls;
        timestep_cycles[timesteps as usize - 1] += out_stalls;
        stats.xbar_transfers = self.xbar.transfers();
        stats.collector_events = self.collector.merged_events();

        let geometry = Geometry::new(
            out_shape.width.max(1),
            out_shape.height.max(1),
            out_shape.channels.max(1),
            timesteps,
        )
        .map_err(|e| SimError::MalformedOpSequence(e.to_string()))?;
        let mut output = EventStream::with_geometry(geometry);
        output.extend(output_events);
        output.sort_by_time();

        Ok(LayerRunOutput {
            output,
            stats,
            timestep_cycles,
        })
    }

    /// The deterministic reduction of one pass: walks the op sequence once,
    /// combining the per-slice worker records **in slice order** into the
    /// global cycle accounting, the crossbar/collector activity, the trace
    /// and the output event stream — exactly the arbitration the sequential
    /// engine (and the hardware's collector tree) performs.
    fn reduce_pass(
        &mut self,
        ops: &[Event],
        weights_resident: bool,
        state_access_factor: u64,
        stats: &mut CycleStats,
        timestep_cycles: &mut [u64],
        output_events: &mut Vec<Event>,
    ) {
        // Split the engine into its disjoint parts so the records can be read
        // while the crossbar/collector/trace are driven.
        let records = &self.records;
        let collector = &mut self.collector;
        let xbar = &mut self.xbar;
        let trace = &mut self.trace;
        let cursors = &mut self.cursors;
        cursors.clear();
        cursors.resize(records.len(), 0);
        let event_cost = u64::from(self.config.cycles_per_event) * state_access_factor;
        let scan_cost = self.config.neurons_per_cluster as u64 * state_access_factor;

        let mut views: Vec<&[Event]> = Vec::with_capacity(records.len());
        let mut update_index = 0usize;
        let mut fire_index = 0usize;
        for op in ops {
            match op.op {
                EventOp::Reset => {
                    let _ = xbar.broadcast(XbarPort::StreamerIn);
                    stats.reset_cycles += 1;
                    stats.total_cycles += 1;
                    timestep_cycles[op.t as usize] += 1;
                    trace.push(TraceRecord::Reset { time: op.t });
                }
                EventOp::Update => {
                    let _ = xbar.broadcast(XbarPort::StreamerIn);
                    stats.input_events += 1;
                    stats.update_cycles += event_cost;
                    stats.total_cycles += event_cost;
                    timestep_cycles[op.t as usize] += event_cost;
                    // The cross-slice ops sum is only observable through the
                    // weight-streaming stall model and the trace; when
                    // neither consumes it, don't compute it.
                    let mut event_ops = 0u64;
                    if !weights_resident || trace.is_enabled() {
                        for record in records.iter().filter(|r| r.active) {
                            event_ops += record.update_ops[update_index];
                        }
                    }
                    if !weights_resident {
                        // Weights streamed per event: 8 packed 4-bit
                        // weights per 32-bit memory word (Fig. 1).
                        let words = event_ops.div_ceil(8);
                        stats.streamer_reads += words;
                        if words > event_cost {
                            let stall = words - event_cost;
                            stats.stall_cycles += stall;
                            stats.total_cycles += stall;
                            timestep_cycles[op.t as usize] += stall;
                        }
                    }
                    trace.push(TraceRecord::EventConsumed {
                        time: op.t,
                        channel: op.ch,
                        address: (op.x, op.y),
                        synaptic_ops: event_ops,
                    });
                    update_index += 1;
                }
                EventOp::Fire => {
                    let mut any_scanned = false;
                    let mut emitted = 0u64;
                    views.clear();
                    for (s, record) in records.iter().enumerate() {
                        if !record.active {
                            views.push(&record.fired[0..0]);
                            continue;
                        }
                        any_scanned |= record.scanned[fire_index];
                        let count = record.fire_counts[fire_index] as usize;
                        let start = cursors[s];
                        views.push(&record.fired[start..start + count]);
                        cursors[s] = start + count;
                        emitted += count as u64;
                    }
                    let fire_cost = if any_scanned { scan_cost } else { 1 };
                    // State updates performed during an executed scan are
                    // synaptic-side bookkeeping, not SOPs; only cycle cost
                    // is accounted here.
                    stats.fire_cycles += fire_cost;
                    stats.total_cycles += fire_cost;
                    timestep_cycles[op.t as usize] += fire_cost;
                    stats.output_events += emitted;
                    let merged = collector.merge_slices(&views, output_events);
                    for _ in 0..merged {
                        let _ = xbar.route(XbarPort::Collector, XbarPort::StreamerOut);
                    }
                    trace.push(TraceRecord::FireScan {
                        time: op.t,
                        emitted,
                    });
                    fire_index += 1;
                }
            }
        }
        // The per-slice activity counters are plain sums: merge them in one
        // go (associative and slice-order independent).
        for record in records.iter().filter(|r| r.active) {
            record.merge_into(stats, u64::from(self.config.cycles_per_event));
        }
    }

    fn program_registers(
        &mut self,
        mapping: &LayerMapping,
        input: &EventStream,
    ) -> Result<(), SimError> {
        let params = mapping.params();
        let in_shape = mapping.input_shape();
        let kernel = match mapping {
            LayerMapping::Conv { kernel, .. } => u32::from(*kernel),
            LayerMapping::Dense { .. } => 0,
        };
        let features = u32::from(self.config.tlu_enabled)
            | (u32::from(self.config.clock_gating) << 1)
            | (u32::from(self.config.broadcast) << 2);
        self.regfile.set(Register::Control, 1)?;
        self.regfile.set(Register::Leak, params.leak as u32)?;
        self.regfile
            .set(Register::Threshold, params.threshold as u32)?;
        self.regfile
            .set(Register::ActiveSlices, self.config.num_slices as u32)?;
        self.regfile
            .set(Register::LayerWidth, u32::from(in_shape.width))?;
        self.regfile
            .set(Register::LayerHeight, u32::from(in_shape.height))?;
        self.regfile
            .set(Register::LayerChannels, u32::from(in_shape.channels))?;
        self.regfile.set(Register::KernelSize, kernel)?;
        self.regfile.set(Register::Features, features)?;
        self.regfile.set(Register::EventBase, input.len() as u32)?;
        Ok(())
    }

    /// Streams the operation sequence through the input DMA model, returning
    /// `(words_read, stall_cycles)`.
    fn model_input_dma(&mut self, ops: &[Event]) -> (u64, u64) {
        match self.format.pack_all(ops) {
            Ok(words) => {
                self.memory.load_events(words);
                let mut streamer = Streamer::new(
                    self.format,
                    self.config.streamer_fifo_depth,
                    self.config.cycles_per_event,
                );
                match streamer.stream_in(&mut self.memory, self.config.num_streamers as u32) {
                    Ok(result) => (result.words_read, result.stall_cycles),
                    Err(_) => (ops.len() as u64, 0),
                }
            }
            Err(_) => (ops.len() as u64, 0),
        }
    }

    /// Streams the produced output events through the output DMA model,
    /// returning `(words_written, stall_cycles)`.
    fn model_output_dma(&mut self, events: &[Event]) -> (u64, u64) {
        let mut memory = MemoryModel::new(self.config.memory_latency, 2);
        let mut streamer = Streamer::new(
            self.format,
            self.config.streamer_fifo_depth,
            self.config.cycles_per_event,
        );
        match streamer.stream_out(events, &mut memory, self.config.num_streamers as u32) {
            Ok(result) => (result.words_written, result.stall_cycles),
            Err(_) => (events.len() as u64, 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{LifHardwareParams, MapShape};

    fn small_config() -> SneConfig {
        SneConfig {
            num_slices: 2,
            clusters_per_slice: 4,
            neurons_per_cluster: 8,
            ..SneConfig::default()
        }
    }

    /// 1 input channel, 4x4 map, 2 output channels, all-ones 3x3 kernels,
    /// threshold 1 so every touched neuron fires at the end of the timestep.
    fn conv_mapping(threshold: i16) -> LayerMapping {
        let mut weights = vec![1i8; 9];
        weights.extend(vec![1i8; 9]);
        LayerMapping::conv(
            MapShape::new(1, 4, 4),
            2,
            3,
            weights,
            LifHardwareParams { leak: 0, threshold },
        )
        .unwrap()
    }

    fn single_spike_stream() -> EventStream {
        let mut s = EventStream::new(4, 4, 1, 3);
        s.push(Event::update(0, 0, 2, 2)).unwrap();
        s
    }

    #[test]
    fn single_event_produces_receptive_field_spikes() {
        let mut engine = Engine::new(small_config());
        let mapping = conv_mapping(1);
        let result = engine.run_layer(&mapping, &single_spike_stream()).unwrap();
        // A centre spike with all-ones kernel and threshold 1 makes the full
        // 3x3 receptive field fire in both output channels.
        assert_eq!(result.output.spike_count(), 18);
        assert_eq!(result.stats.input_events, 1);
        assert_eq!(result.stats.synaptic_ops, 18);
        assert!(result.output.iter().all(|e| e.t == 0));
    }

    #[test]
    fn cycle_count_follows_events_and_timesteps() {
        let mut engine = Engine::new(small_config());
        let mapping = conv_mapping(100); // nothing fires
        let mut stream = EventStream::new(4, 4, 1, 10);
        for t in 0..5 {
            stream.push(Event::update(t, 0, 1, 1)).unwrap();
        }
        let result = engine.run_layer(&mapping, &stream).unwrap();
        let cfg = small_config();
        // 5 events * 48 cycles of update time.
        assert_eq!(
            result.stats.update_cycles,
            5 * u64::from(cfg.cycles_per_event)
        );
        // 5 timesteps execute a scan (8 cycles), 5 idle timesteps cost 1 cycle.
        assert_eq!(result.stats.fire_cycles, 5 * 8 + 5);
        assert_eq!(result.stats.reset_cycles, 1);
        assert_eq!(result.stats.output_events, 0);
    }

    #[test]
    fn energy_proportionality_cycles_scale_with_events() {
        let mut engine = Engine::new(small_config());
        let mapping = conv_mapping(100);
        let run = |engine: &mut Engine, n: u32| {
            let mut stream = EventStream::new(4, 4, 1, 50);
            for t in 0..n {
                stream.push(Event::update(t % 50, 0, 1, 1)).unwrap();
            }
            engine.run_layer(&mapping, &stream).unwrap().stats
        };
        let few = run(&mut engine, 10);
        let many = run(&mut engine, 40);
        let delta_cycles = many.update_cycles - few.update_cycles;
        assert_eq!(delta_cycles, 30 * 48);
        assert!(many.synaptic_ops > few.synaptic_ops);
    }

    #[test]
    fn multi_pass_when_layer_exceeds_capacity() {
        // Engine capacity: 2 slices * 32 neurons = 64; layer has 2*16=32 per
        // channel * 8 channels = 128 neurons -> 2 passes.
        let mut engine = Engine::new(small_config());
        let weights = vec![1i8; 8 * 9];
        let mapping = LayerMapping::conv(
            MapShape::new(1, 4, 4),
            8,
            3,
            weights,
            LifHardwareParams {
                leak: 0,
                threshold: 1,
            },
        )
        .unwrap();
        assert_eq!(engine.passes_for(&mapping), 2);
        let result = engine.run_layer(&mapping, &single_spike_stream()).unwrap();
        assert_eq!(result.stats.passes, 2);
        // All 8 output channels observed the spike.
        assert_eq!(result.output.spike_count(), 8 * 9);
    }

    #[test]
    fn non_resident_weights_are_streamed_per_event() {
        // A dense layer with 16 input positions needs 16 weight sets; with a
        // 2-set filter buffer the weights are streamed from memory per event,
        // which shows up as additional streamer reads.
        let mapping = |_: ()| {
            LayerMapping::dense(
                MapShape::new(1, 4, 4),
                4,
                vec![1; 64],
                LifHardwareParams::default(),
            )
            .unwrap()
        };
        let mut stream = EventStream::new(4, 4, 1, 2);
        stream.push(Event::update(0, 0, 1, 1)).unwrap();
        stream.push(Event::update(1, 0, 2, 2)).unwrap();

        let mut small_buffer = Engine::new(SneConfig {
            weight_buffer_sets: 2,
            ..small_config()
        });
        let mut big_buffer = Engine::new(SneConfig {
            weight_buffer_sets: 256,
            ..small_config()
        });
        let streamed = small_buffer.run_layer(&mapping(()), &stream).unwrap();
        let resident = big_buffer.run_layer(&mapping(()), &stream).unwrap();
        assert!(streamed.stats.streamer_reads > resident.stats.streamer_reads);
        // Functional results are identical either way.
        assert_eq!(streamed.output, resident.output);
    }

    #[test]
    fn out_of_range_events_are_rejected() {
        let mut engine = Engine::new(small_config());
        let mapping = conv_mapping(1);
        let mut stream = EventStream::new(8, 8, 1, 2);
        stream.push(Event::update(0, 0, 7, 7)).unwrap();
        assert!(matches!(
            engine.run_layer(&mapping, &stream),
            Err(SimError::EventOutOfRange { .. })
        ));
    }

    #[test]
    fn registers_reflect_the_programmed_layer() {
        let mut engine = Engine::new(small_config());
        let mapping = conv_mapping(5);
        let _ = engine.run_layer(&mapping, &single_spike_stream()).unwrap();
        assert_eq!(engine.regfile_mut().get(Register::Threshold).unwrap(), 5);
        assert_eq!(engine.regfile_mut().get(Register::KernelSize).unwrap(), 3);
        assert_eq!(engine.regfile_mut().get(Register::LayerWidth).unwrap(), 4);
        assert_eq!(engine.regfile_mut().get(Register::ActiveSlices).unwrap(), 2);
    }

    #[test]
    fn trace_records_pass_events_and_fires() {
        let mut engine = Engine::new(small_config());
        engine.enable_trace(128);
        let mapping = conv_mapping(1);
        let _ = engine.run_layer(&mapping, &single_spike_stream()).unwrap();
        let records = engine.trace().records();
        assert!(records
            .iter()
            .any(|r| matches!(r, TraceRecord::PassStart { .. })));
        assert!(records
            .iter()
            .any(|r| matches!(r, TraceRecord::EventConsumed { .. })));
        assert!(records
            .iter()
            .any(|r| matches!(r, TraceRecord::FireScan { .. })));
    }

    #[test]
    fn dense_layer_runs_end_to_end() {
        let mut engine = Engine::new(small_config());
        // 2x2 input, 4 outputs, weight 2 everywhere, threshold 2: every input
        // spike makes all outputs fire at the end of its timestep.
        let mapping = LayerMapping::dense(
            MapShape::new(1, 2, 2),
            4,
            vec![2; 16],
            LifHardwareParams {
                leak: 0,
                threshold: 2,
            },
        )
        .unwrap();
        let mut stream = EventStream::new(2, 2, 1, 3);
        stream.push(Event::update(1, 0, 0, 0)).unwrap();
        let result = engine.run_layer(&mapping, &stream).unwrap();
        assert_eq!(result.output.spike_count(), 4);
        assert!(result.output.iter().all(|e| e.t == 1));
        assert_eq!(result.stats.synaptic_ops, 4);
    }

    #[test]
    fn invalid_config_is_rejected_at_run_time() {
        let mut engine = Engine::new(SneConfig {
            num_slices: 0,
            ..SneConfig::default()
        });
        let mapping = conv_mapping(1);
        assert!(engine.run_layer(&mapping, &single_spike_stream()).is_err());
    }

    #[test]
    fn timestep_cycles_sum_to_total() {
        let mut engine = Engine::new(small_config());
        let mapping = conv_mapping(2);
        let mut stream = EventStream::new(4, 4, 1, 6);
        for t in 0..6 {
            stream.push(Event::update(t, 0, 2, 2)).unwrap();
        }
        let result = engine.run_layer(&mapping, &stream).unwrap();
        assert_eq!(result.timestep_cycles.len(), 6);
        assert_eq!(
            result.timestep_cycles.iter().sum::<u64>(),
            result.stats.total_cycles
        );
        // Every timestep consumed one event, so each carries real work.
        assert!(result.timestep_cycles.iter().all(|&c| c > 0));
    }

    #[test]
    fn stateful_chunks_match_a_single_whole_stream_run() {
        let mapping = |_: ()| {
            // Leak 1 + threshold 7 make the result depend on state carried
            // across timesteps (and therefore across chunk boundaries).
            let mut weights = vec![2i8; 9];
            weights.extend(vec![3i8; 9]);
            LayerMapping::conv(
                MapShape::new(1, 4, 4),
                2,
                3,
                weights,
                LifHardwareParams {
                    leak: 1,
                    threshold: 7,
                },
            )
            .unwrap()
        };
        let mut stream = EventStream::new(4, 4, 1, 12);
        for t in 0..12 {
            stream.push(Event::update(t, 0, (t % 4) as u16, 1)).unwrap();
            if t % 3 == 0 {
                stream.push(Event::update(t, 0, 2, 2)).unwrap();
            }
        }

        let mut whole_engine = Engine::new(small_config());
        let whole = whole_engine.run_layer(&mapping(()), &stream).unwrap();

        let mut chunk_engine = Engine::new(small_config());
        let mut state = LayerState::new(&small_config(), &mapping(()));
        let mut events = Vec::new();
        for (i, (start, end)) in [(0, 5), (5, 6), (6, 12)].into_iter().enumerate() {
            let chunk = stream.window(start, end);
            let run = chunk_engine
                .run_layer_stateful(&mapping(()), &chunk, &mut state, i > 0)
                .unwrap();
            events.extend(run.output.into_events().into_iter().map(|e| Event {
                t: e.t + start,
                ..e
            }));
        }
        assert_eq!(events, whole.output.as_slice());
    }

    #[test]
    fn stateful_multi_pass_chunks_match_whole_run() {
        // 8 output channels on a 2-slice engine: two mapping passes, so the
        // persistent state must round-trip per (pass, slice) slot.
        let weights = vec![1i8; 8 * 9];
        let mapping = LayerMapping::conv(
            MapShape::new(1, 4, 4),
            8,
            3,
            weights,
            LifHardwareParams {
                leak: 0,
                threshold: 2,
            },
        )
        .unwrap();
        let mut stream = EventStream::new(4, 4, 1, 8);
        for t in 0..8 {
            stream.push(Event::update(t, 0, 2, 2)).unwrap();
        }
        let mut whole_engine = Engine::new(small_config());
        let whole = whole_engine.run_layer(&mapping, &stream).unwrap();

        let mut chunk_engine = Engine::new(small_config());
        let mut state = LayerState::new(&small_config(), &mapping);
        assert_eq!(state.passes(), 2);
        let mut spikes = 0;
        for (i, (start, end)) in [(0, 3), (3, 8)].into_iter().enumerate() {
            let chunk = stream.window(start, end);
            let run = chunk_engine
                .run_layer_stateful(&mapping, &chunk, &mut state, i > 0)
                .unwrap();
            spikes += run.output.spike_count();
        }
        assert_eq!(spikes, whole.output.spike_count());
    }

    #[test]
    fn mismatched_layer_state_is_rejected() {
        let mut engine = Engine::new(small_config());
        let mapping = conv_mapping(1);
        let mut state = LayerState::new(&SneConfig::default(), &mapping);
        assert!(matches!(
            engine.run_layer_stateful(&mapping, &single_spike_stream(), &mut state, false),
            Err(SimError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn non_resumed_stateful_run_matches_stateless_run() {
        let mapping = conv_mapping(3);
        let stream = single_spike_stream();
        let mut a = Engine::new(small_config());
        let mut b = Engine::new(small_config());
        let mut state = LayerState::new(&small_config(), &mapping);
        let stateless = a.run_layer(&mapping, &stream).unwrap();
        let stateful = b
            .run_layer_stateful(&mapping, &stream, &mut state, false)
            .unwrap();
        assert_eq!(stateless, stateful);
        // The state left behind is the end-of-stream state, not rest: the
        // spike at t=0 fired and reset, later timesteps stayed idle.
        assert!(state.membrane(0).is_some());
    }

    #[test]
    fn threaded_execution_is_bit_exact_with_sequential() {
        // Multi-pass layer (2 passes on the small config), leak + threshold
        // so state carries across timesteps, chunked stateful resume — the
        // full surface the parallel fan-out must reproduce exactly.
        let weights: Vec<i8> = (0..8 * 9).map(|i| ((i % 7) as i8) - 3).collect();
        let mapping = LayerMapping::conv(
            crate::mapping::MapShape::new(1, 4, 4),
            8,
            3,
            weights,
            crate::mapping::LifHardwareParams {
                leak: 1,
                threshold: 3,
            },
        )
        .unwrap();
        // 250 timesteps with ~375 events: enough op-sequence entries that the
        // pass crosses the engine's minimum-work gate and genuinely fans out.
        let mut stream = EventStream::new(4, 4, 1, 250);
        for t in 0..250 {
            stream.push(Event::update(t, 0, (t % 4) as u16, 2)).unwrap();
            if t % 2 == 0 {
                stream.push(Event::update(t, 0, 1, 1)).unwrap();
            }
        }
        assert!(
            stream.to_op_sequence().len() * small_config().num_slices >= Engine::MIN_PARALLEL_UNITS,
            "workload must cross the parallel gate or the test is vacuous"
        );

        let mut sequential = Engine::new(small_config());
        sequential.enable_trace(256);
        let expected = sequential.run_layer(&mapping, &stream).unwrap();

        for threads in [1usize, 2, 3, 8] {
            let mut threaded =
                Engine::with_exec(small_config(), crate::exec::ExecStrategy::threaded(threads));
            assert_eq!(threaded.exec().threads(), threads.max(1));
            threaded.enable_trace(256);
            let result = threaded.run_layer(&mapping, &stream).unwrap();
            assert_eq!(result, expected, "threads = {threads}");
            assert_eq!(threaded.trace().records(), sequential.trace().records());

            // Stateful chunked resume under threads matches the whole run.
            let mut chunked =
                Engine::with_exec(small_config(), crate::exec::ExecStrategy::threaded(threads));
            let mut state = LayerState::new(&small_config(), &mapping);
            let mut events = Vec::new();
            for (i, (start, end)) in [(0, 100), (100, 250)].into_iter().enumerate() {
                let chunk = stream.window(start, end);
                let run = chunked
                    .run_layer_stateful(&mapping, &chunk, &mut state, i > 0)
                    .unwrap();
                events.extend(run.output.into_events().into_iter().map(|e| Event {
                    t: e.t + start,
                    ..e
                }));
            }
            assert_eq!(events, expected.output.as_slice(), "threads = {threads}");
        }
    }

    #[test]
    fn planned_runs_are_bit_exact_with_naive_runs() {
        let mapping = conv_mapping(2);
        let plan = LayerPlan::build(&mapping);
        let mut stream = EventStream::new(4, 4, 1, 8);
        for t in 0..8 {
            stream.push(Event::update(t, 0, (t % 4) as u16, 2)).unwrap();
            stream.push(Event::update(t, 0, 0, 0)).unwrap();
        }

        let mut naive = Engine::new(small_config());
        naive.enable_trace(128);
        let expected = naive.run_layer(&mapping, &stream).unwrap();

        let mut planned = Engine::new(small_config());
        planned.enable_trace(128);
        let result = planned.run_layer_planned(&mapping, &plan, &stream).unwrap();
        assert_eq!(result, expected);
        assert_eq!(planned.trace().records(), naive.trace().records());

        // Stateful chunked resume on the planned path matches the whole run.
        let mut chunked = Engine::new(small_config());
        let mut state = LayerState::new(&small_config(), &mapping);
        let mut events = Vec::new();
        for (i, (start, end)) in [(0, 3), (3, 8)].into_iter().enumerate() {
            let chunk = stream.window(start, end);
            let run = chunked
                .run_layer_stateful_planned(&mapping, &plan, &chunk, &mut state, i > 0)
                .unwrap();
            events.extend(run.output.into_events().into_iter().map(|e| Event {
                t: e.t + start,
                ..e
            }));
        }
        assert_eq!(events, expected.output.as_slice());
    }

    #[test]
    fn mismatched_plans_are_rejected() {
        let mapping = conv_mapping(2);
        let other = conv_mapping(3); // different threshold -> different layer
        let plan = LayerPlan::build(&other);
        let mut engine = Engine::new(small_config());
        assert!(matches!(
            engine.run_layer_planned(&mapping, &plan, &single_spike_stream()),
            Err(SimError::InvalidConfig {
                name: "layer plan",
                ..
            })
        ));
        let mut state = LayerState::new(&small_config(), &mapping);
        assert!(engine
            .run_layer_stateful_planned(&mapping, &plan, &single_spike_stream(), &mut state, false)
            .is_err());
    }

    #[test]
    fn exec_strategy_is_switchable_on_a_live_engine() {
        let mut engine = Engine::new(small_config());
        let mapping = conv_mapping(1);
        let a = engine.run_layer(&mapping, &single_spike_stream()).unwrap();
        engine.set_exec(crate::exec::ExecStrategy::threaded(4));
        let b = engine.run_layer(&mapping, &single_spike_stream()).unwrap();
        assert_eq!(a, b);
        assert!(engine.exec().is_parallel());
    }

    #[test]
    fn tlu_reduces_fire_cycles_on_sparse_streams() {
        let sparse_stream = || {
            let mut s = EventStream::new(4, 4, 1, 100);
            s.push(Event::update(0, 0, 2, 2)).unwrap();
            s
        };
        let mapping = conv_mapping(100);
        let mut with_tlu = Engine::new(SneConfig {
            tlu_enabled: true,
            ..small_config()
        });
        let mut without_tlu = Engine::new(SneConfig {
            tlu_enabled: false,
            ..small_config()
        });
        let a = with_tlu
            .run_layer(&mapping, &sparse_stream())
            .unwrap()
            .stats;
        let b = without_tlu
            .run_layer(&mapping, &sparse_stream())
            .unwrap()
            .stats;
        assert!(a.fire_cycles < b.fire_cycles);
        assert!(a.tlu_skipped_updates > 0);
        assert_eq!(b.tlu_skipped_updates, 0);
    }
}

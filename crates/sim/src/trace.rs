//! Optional execution trace.
//!
//! The trace records one entry per architectural operation (event consumed,
//! fire scan, pass boundary). It is the debugging aid that replaces waveform
//! inspection of the RTL; it is disabled by default because long runs would
//! otherwise allocate unboundedly.

use serde::{Deserialize, Serialize};

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceRecord {
    /// A mapping pass started (output-channel group).
    PassStart {
        /// Pass index.
        pass: usize,
        /// Output channels processed in this pass.
        channels: Vec<u16>,
    },
    /// An `UPDATE_OP` event was consumed.
    EventConsumed {
        /// Timestep of the event.
        time: u32,
        /// Input channel.
        channel: u16,
        /// Spatial address.
        address: (u16, u16),
        /// Synaptic operations the event caused.
        synaptic_ops: u64,
    },
    /// A `FIRE_OP` scan completed.
    FireScan {
        /// Timestep the scan closed.
        time: u32,
        /// Output events emitted by the scan.
        emitted: u64,
    },
    /// A `RST_OP` was processed.
    Reset {
        /// Timestep of the reset.
        time: u32,
    },
}

/// A bounded trace buffer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    enabled: bool,
    capacity: usize,
    records: Vec<TraceRecord>,
    dropped: u64,
}

impl Trace {
    /// Creates a disabled trace (records are discarded).
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            capacity: 0,
            records: Vec::new(),
            dropped: 0,
        }
    }

    /// Creates an enabled trace holding at most `capacity` records.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            enabled: true,
            capacity,
            records: Vec::with_capacity(capacity.min(4096)),
            dropped: 0,
        }
    }

    /// Returns `true` if records are being kept.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends a record (dropped when disabled or full).
    pub fn push(&mut self, record: TraceRecord) {
        if !self.enabled {
            return;
        }
        if self.records.len() < self.capacity {
            self.records.push(record);
        } else {
            self.dropped += 1;
        }
    }

    /// Recorded entries, in order.
    #[must_use]
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records dropped because the buffer was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Default for Trace {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_keeps_nothing() {
        let mut t = Trace::disabled();
        t.push(TraceRecord::Reset { time: 0 });
        assert!(t.records().is_empty());
        assert!(!t.is_enabled());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn enabled_trace_keeps_up_to_capacity() {
        let mut t = Trace::with_capacity(2);
        for i in 0..4 {
            t.push(TraceRecord::Reset { time: i });
        }
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.dropped(), 2);
        assert!(t.is_enabled());
    }

    #[test]
    fn records_preserve_order_and_payload() {
        let mut t = Trace::with_capacity(8);
        t.push(TraceRecord::PassStart {
            pass: 0,
            channels: vec![0, 1],
        });
        t.push(TraceRecord::EventConsumed {
            time: 3,
            channel: 1,
            address: (4, 5),
            synaptic_ops: 9,
        });
        t.push(TraceRecord::FireScan {
            time: 3,
            emitted: 2,
        });
        assert_eq!(t.records().len(), 3);
        assert!(matches!(
            t.records()[1],
            TraceRecord::EventConsumed {
                synaptic_ops: 9,
                ..
            }
        ));
    }
}

//! Hand-rolled little-endian primitive codec.
//!
//! The vendored `serde` is a no-op stand-in (DESIGN.md §6), so the snapshot
//! format is encoded by hand: fixed-width little-endian integers, `u32`
//! length-prefixed strings and slices, and an FNV-1a digest over raw bytes.
//! The decoder is bounds-checked everywhere — a truncated or hostile byte
//! stream yields [`StoreError::Truncated`]/[`StoreError::Malformed`], never
//! a panic — because crash recovery feeds it torn files by design.

use crate::error::StoreError;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice — the digest the snapshot header carries for
/// its payload and for itself. Not cryptographic: it guards against torn
/// writes and bit rot, not adversaries (same policy as the plan verifier's
/// weight digest in `sne_sim`).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Streaming FNV-1a accumulator for digests over multiple fields without
/// materializing a contiguous buffer.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// A fresh accumulator at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self(FNV_OFFSET)
    }

    /// Feeds raw bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds one little-endian `u64`.
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// The current digest.
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// Little-endian encoder into a growable buffer.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes encoded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing was encoded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i8`.
    pub fn i8(&mut self, v: i8) {
        self.buf.push(v as u8);
    }

    /// Appends a little-endian `i16`.
    pub fn i16(&mut self, v: i16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian IEEE-754 `f32`.
    pub fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian IEEE-754 `f64` (bit-exact round trip).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes with no length prefix (section framing writes its
    /// own `u64` length).
    pub fn raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a `u32` length prefix followed by the raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(u32::try_from(v.len()).expect("section blob over 4 GiB"));
        self.buf.extend_from_slice(v);
    }

    /// Appends a UTF-8 string with a `u32` length prefix.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Appends a `u32` count followed by the elements as little-endian
    /// `i16`s — the membrane-state wire layout.
    pub fn i16_slice(&mut self, v: &[i16]) {
        self.u32(u32::try_from(v.len()).expect("state slice over u32::MAX"));
        for &s in v {
            self.i16(s);
        }
    }

    /// Appends a `u32` count followed by little-endian `u32`s.
    pub fn u32_slice(&mut self, v: &[u32]) {
        self.u32(u32::try_from(v.len()).expect("slice over u32::MAX"));
        for &s in v {
            self.u32(s);
        }
    }
}

/// Bounds-checked little-endian decoder over a byte slice.
#[derive(Debug)]
pub struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder at the start of `bytes`.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Returns `true` once every byte is consumed.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Truncated {
                need: n,
                have: self.remaining(),
            });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N], StoreError> {
        Ok(self.take(N)?.try_into().expect("take returned N bytes"))
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] at end of input.
    pub fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.array::<1>()?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] at end of input.
    pub fn u16(&mut self) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(self.array()?))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] at end of input.
    pub fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] at end of input.
    pub fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    /// Reads an `i8`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] at end of input.
    pub fn i8(&mut self) -> Result<i8, StoreError> {
        Ok(self.u8()? as i8)
    }

    /// Reads a little-endian `i16`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] at end of input.
    pub fn i16(&mut self) -> Result<i16, StoreError> {
        Ok(i16::from_le_bytes(self.array()?))
    }

    /// Reads a little-endian `f32`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] at end of input.
    pub fn f32(&mut self) -> Result<f32, StoreError> {
        Ok(f32::from_le_bytes(self.array()?))
    }

    /// Reads a little-endian `f64`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] at end of input.
    pub fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_le_bytes(self.array()?))
    }

    /// Reads a `u32` length prefix followed by that many raw bytes.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] if the prefix overruns the input.
    pub fn bytes(&mut self) -> Result<&'a [u8], StoreError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Reads a `u32`-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] on overrun, [`StoreError::Malformed`] on
    /// invalid UTF-8.
    pub fn str(&mut self) -> Result<&'a str, StoreError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| StoreError::Malformed("non-UTF-8 string"))
    }

    /// Reads a `u32`-prefixed `i16` slice (membrane-state layout).
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] if the count overruns the input.
    pub fn i16_slice(&mut self) -> Result<Vec<i16>, StoreError> {
        let count = self.u32()? as usize;
        let raw = self.take(count * 2)?;
        Ok(raw
            .chunks_exact(2)
            .map(|c| i16::from_le_bytes([c[0], c[1]]))
            .collect())
    }

    /// Reads a `u32`-prefixed `u32` slice.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] if the count overruns the input.
    pub fn u32_slice(&mut self) -> Result<Vec<u32>, StoreError> {
        let count = self.u32()? as usize;
        let raw = self.take(count * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut enc = Enc::new();
        enc.u8(7);
        enc.u16(0xBEEF);
        enc.u32(0xDEAD_BEEF);
        enc.u64(u64::MAX - 1);
        enc.i8(-5);
        enc.i16(-12345);
        enc.f32(1.5);
        enc.f64(-0.1);
        enc.str("snapshot");
        enc.i16_slice(&[-1, 0, 1, i16::MAX, i16::MIN]);
        enc.u32_slice(&[0, 42, u32::MAX]);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        assert_eq!(dec.u8().unwrap(), 7);
        assert_eq!(dec.u16().unwrap(), 0xBEEF);
        assert_eq!(dec.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(dec.u64().unwrap(), u64::MAX - 1);
        assert_eq!(dec.i8().unwrap(), -5);
        assert_eq!(dec.i16().unwrap(), -12345);
        assert_eq!(dec.f32().unwrap(), 1.5);
        assert_eq!(dec.f64().unwrap().to_bits(), (-0.1f64).to_bits());
        assert_eq!(dec.str().unwrap(), "snapshot");
        assert_eq!(dec.i16_slice().unwrap(), vec![-1, 0, 1, i16::MAX, i16::MIN]);
        assert_eq!(dec.u32_slice().unwrap(), vec![0, 42, u32::MAX]);
        assert!(dec.is_done());
    }

    #[test]
    fn truncation_is_an_error_never_a_panic() {
        let mut enc = Enc::new();
        enc.u64(1);
        let bytes = enc.into_bytes();
        for cut in 0..bytes.len() {
            let mut dec = Dec::new(&bytes[..cut]);
            assert!(matches!(dec.u64(), Err(StoreError::Truncated { .. })));
        }
        // A length prefix pointing past the end is truncation, not a panic.
        let mut enc = Enc::new();
        enc.u32(1_000_000);
        let bytes = enc.into_bytes();
        assert!(matches!(
            Dec::new(&bytes).bytes(),
            Err(StoreError::Truncated { .. })
        ));
        assert!(matches!(
            Dec::new(&bytes).i16_slice(),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Reference FNV-1a values for "" and "a".
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        let mut acc = Fnv1a::new();
        acc.update(b"hello ");
        acc.update(b"world");
        assert_eq!(acc.digest(), fnv1a(b"hello world"));
    }

    #[test]
    fn invalid_utf8_is_malformed() {
        let mut enc = Enc::new();
        enc.bytes(&[0xFF, 0xFE]);
        let bytes = enc.into_bytes();
        assert!(matches!(
            Dec::new(&bytes).str(),
            Err(StoreError::Malformed(_))
        ));
    }
}

use std::error::Error;
use std::fmt;

/// Errors of the durable store layer.
///
/// Every variant is `Clone + PartialEq` (I/O errors are carried as their
/// rendered message) so the error can travel inside `sne::SneError` and be
/// asserted on in tests. The corruption variants are deliberately fine
/// grained: crash recovery treats them all as "discard the snapshot", but
/// the fault-injection harness asserts the *right* one fires for each
/// injected fault.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StoreError {
    /// An operating-system I/O failure (rendered message).
    Io(String),
    /// The byte stream ended before a fixed-size field could be read — a
    /// torn write or a short read.
    Truncated {
        /// Bytes the decoder needed.
        need: usize,
        /// Bytes that were available.
        have: usize,
    },
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The header names a format version this build cannot decode.
    UnsupportedVersion(u16),
    /// The header's own checksum does not match its fields.
    HeaderCorrupt,
    /// The header's kind byte is not a known snapshot kind.
    BadKind(u8),
    /// The payload is shorter or longer than the header promises — the
    /// classic torn-write signature.
    Torn {
        /// Payload length the header promises.
        expected: u64,
        /// Payload length actually present.
        found: u64,
    },
    /// The payload digest does not match the header (bit rot / flipped
    /// byte).
    DigestMismatch {
        /// Digest recorded in the header.
        expected: u64,
        /// Digest of the payload as read.
        found: u64,
    },
    /// The snapshot was taken against a different artifact (weights,
    /// geometry or engine configuration differ) and must never be resumed.
    ArtifactMismatch {
        /// Digest of the artifact attempting the restore.
        expected: u64,
        /// Digest recorded in the snapshot header.
        found: u64,
    },
    /// A section the decoder requires is absent from the payload.
    MissingSection(u32),
    /// A section decoded to structurally invalid contents.
    Malformed(&'static str),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(message) => write!(f, "store i/o error: {message}"),
            Self::Truncated { need, have } => {
                write!(f, "snapshot truncated: needed {need} bytes, had {have}")
            }
            Self::BadMagic => write!(f, "not a snapshot: bad magic"),
            Self::UnsupportedVersion(v) => write!(f, "unsupported snapshot format version {v}"),
            Self::HeaderCorrupt => write!(f, "snapshot header checksum mismatch"),
            Self::BadKind(k) => write!(f, "unknown snapshot kind {k}"),
            Self::Torn { expected, found } => write!(
                f,
                "torn snapshot: header promises {expected} payload bytes, found {found}"
            ),
            Self::DigestMismatch { expected, found } => write!(
                f,
                "snapshot payload digest mismatch: header {expected:#018x}, payload {found:#018x}"
            ),
            Self::ArtifactMismatch { expected, found } => write!(
                f,
                "snapshot belongs to a different artifact: restoring digest {expected:#018x}, snapshot digest {found:#018x}"
            ),
            Self::MissingSection(tag) => write!(f, "snapshot is missing section {tag:#06x}"),
            Self::Malformed(what) => write!(f, "malformed snapshot section: {what}"),
        }
    }
}

impl Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(value: std::io::Error) -> Self {
        Self::Io(value.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_clonable() {
        let errors = [
            StoreError::Io("disk on fire".to_owned()),
            StoreError::Truncated { need: 8, have: 3 },
            StoreError::BadMagic,
            StoreError::UnsupportedVersion(9),
            StoreError::HeaderCorrupt,
            StoreError::BadKind(7),
            StoreError::Torn {
                expected: 100,
                found: 3,
            },
            StoreError::DigestMismatch {
                expected: 1,
                found: 2,
            },
            StoreError::ArtifactMismatch {
                expected: 1,
                found: 2,
            },
            StoreError::MissingSection(0x10),
            StoreError::Malformed("bad length"),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
            assert_eq!(e.clone(), e);
        }
    }

    #[test]
    fn io_errors_convert() {
        let err: StoreError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(err, StoreError::Io(_)));
    }
}

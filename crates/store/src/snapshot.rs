//! The versioned snapshot container: a fixed, O(1)-verifiable header
//! followed by length-prefixed sections.
//!
//! ## Layout (format version 1)
//!
//! ```text
//! offset  size  field
//! 0       4     magic "SNES"
//! 4       2     format version (little-endian u16)
//! 6       1     kind (1 = client state, 2 = artifact)
//! 7       1     reserved (0)
//! 8       8     artifact digest (u64)     -- which model/config this is of
//! 16      8     payload length (u64)
//! 24      8     payload FNV-1a digest (u64)
//! 32      8     header FNV-1a digest over bytes 0..32 (u64)
//! 40      ...   payload: sections
//! ```
//!
//! Each section is `tag: u32, len: u64, bytes`. Decoders skip sections with
//! unknown tags (forward compatibility) and fail with
//! [`StoreError::MissingSection`] when a required one is absent.
//!
//! The header is **O(1)-verifiable**: magic, version and the header digest
//! are checked from the first 40 bytes alone, so a recovery scan can reject
//! garbage without reading payloads, and an mmap-style consumer can
//! validate before touching the mapping. The payload starts at byte 40 —
//! 8-byte aligned, so fixed-width fields in sections stay aligned for an
//! mmap reader. Full verification (`SnapshotView::parse`) additionally
//! checks the payload length against the bytes present (torn-write
//! detection) and the payload digest (bit-rot detection).

use crate::codec::{fnv1a, Dec, Enc};
use crate::error::StoreError;

/// The four magic bytes every snapshot starts with.
pub const MAGIC: [u8; 4] = *b"SNES";

/// The snapshot format version this build writes.
pub const FORMAT_VERSION: u16 = 1;

/// Fixed header size in bytes; the payload starts here (8-byte aligned).
pub const HEADER_LEN: usize = 40;

/// What a snapshot contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotKind {
    /// A serialized `ClientState` (the mutable per-client half).
    ClientState,
    /// A serialized `RuntimeArtifact` description (network + config).
    Artifact,
}

impl SnapshotKind {
    fn to_byte(self) -> u8 {
        match self {
            Self::ClientState => 1,
            Self::Artifact => 2,
        }
    }

    fn from_byte(b: u8) -> Result<Self, StoreError> {
        match b {
            1 => Ok(Self::ClientState),
            2 => Ok(Self::Artifact),
            other => Err(StoreError::BadKind(other)),
        }
    }
}

/// A parsed, validated snapshot header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Format version of the snapshot (decoders accept version 1).
    pub version: u16,
    /// What the payload encodes.
    pub kind: SnapshotKind,
    /// Digest of the artifact the snapshot belongs to.
    pub artifact_digest: u64,
    /// Payload length the header promises.
    pub payload_len: u64,
    /// FNV-1a digest the payload must hash to.
    pub payload_digest: u64,
}

impl Header {
    /// Parses and O(1)-verifies the fixed header: magic, version, kind and
    /// the header's own checksum — without touching the payload.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] for fewer than [`HEADER_LEN`] bytes,
    /// [`StoreError::BadMagic`]/[`StoreError::HeaderCorrupt`] for garbage,
    /// [`StoreError::UnsupportedVersion`] for a version this build cannot
    /// decode, [`StoreError::BadKind`] for an unknown kind byte.
    pub fn parse(bytes: &[u8]) -> Result<Self, StoreError> {
        if bytes.len() < HEADER_LEN {
            return Err(StoreError::Truncated {
                need: HEADER_LEN,
                have: bytes.len(),
            });
        }
        let mut dec = Dec::new(&bytes[..HEADER_LEN]);
        let magic = dec.take(4).expect("header length checked");
        if magic != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = dec.u16().expect("header length checked");
        let kind_byte = dec.u8().expect("header length checked");
        let _reserved = dec.u8().expect("header length checked");
        let artifact_digest = dec.u64().expect("header length checked");
        let payload_len = dec.u64().expect("header length checked");
        let payload_digest = dec.u64().expect("header length checked");
        let header_digest = dec.u64().expect("header length checked");
        if fnv1a(&bytes[..32]) != header_digest {
            return Err(StoreError::HeaderCorrupt);
        }
        // Version-gate AFTER the checksum: a snapshot from a future format
        // with an intact header is reported as "unsupported version", not
        // as corruption. Bumping `FORMAT_VERSION` does not widen this match
        // implicitly — a v2 writer must consciously decide whether its
        // reader still accepts v1 (see the golden-fixture test).
        if version != 1 {
            return Err(StoreError::UnsupportedVersion(version));
        }
        let kind = SnapshotKind::from_byte(kind_byte)?;
        Ok(Self {
            version,
            kind,
            artifact_digest,
            payload_len,
            payload_digest,
        })
    }
}

/// Builds a snapshot: header plus tagged sections.
#[derive(Debug)]
pub struct SnapshotBuilder {
    kind: SnapshotKind,
    artifact_digest: u64,
    payload: Enc,
}

impl SnapshotBuilder {
    /// Starts a snapshot of `kind` bound to `artifact_digest`.
    #[must_use]
    pub fn new(kind: SnapshotKind, artifact_digest: u64) -> Self {
        Self {
            kind,
            artifact_digest,
            payload: Enc::new(),
        }
    }

    /// Appends one section.
    pub fn section(&mut self, tag: u32, body: &[u8]) {
        self.payload.u32(tag);
        self.payload.u64(body.len() as u64);
        self.payload.raw(body);
    }

    /// Seals the snapshot: computes the digests and returns header +
    /// payload as one buffer.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        let payload = self.payload.into_bytes();
        let mut head = Enc::new();
        head.u8(MAGIC[0]);
        head.u8(MAGIC[1]);
        head.u8(MAGIC[2]);
        head.u8(MAGIC[3]);
        head.u16(FORMAT_VERSION);
        head.u8(self.kind.to_byte());
        head.u8(0);
        head.u64(self.artifact_digest);
        head.u64(payload.len() as u64);
        head.u64(fnv1a(&payload));
        let mut bytes = head.into_bytes();
        let header_digest = fnv1a(&bytes);
        bytes.extend_from_slice(&header_digest.to_le_bytes());
        debug_assert_eq!(bytes.len(), HEADER_LEN);
        bytes.extend_from_slice(&payload);
        bytes
    }
}

/// A fully validated snapshot: parsed header and the section table.
#[derive(Debug)]
pub struct SnapshotView<'a> {
    /// The validated header.
    pub header: Header,
    sections: Vec<(u32, &'a [u8])>,
}

impl<'a> SnapshotView<'a> {
    /// Parses and **fully** verifies a snapshot: the O(1) header checks,
    /// then payload length against bytes present (torn-write detection),
    /// the payload digest (bit rot) and the section framing.
    ///
    /// # Errors
    ///
    /// Everything [`Header::parse`] raises, plus [`StoreError::Torn`] on a
    /// length mismatch, [`StoreError::DigestMismatch`] on a payload digest
    /// mismatch and [`StoreError::Truncated`]/[`StoreError::Malformed`] on
    /// broken section framing.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, StoreError> {
        let header = Header::parse(bytes)?;
        let payload = &bytes[HEADER_LEN..];
        if payload.len() as u64 != header.payload_len {
            return Err(StoreError::Torn {
                expected: header.payload_len,
                found: payload.len() as u64,
            });
        }
        let found = fnv1a(payload);
        if found != header.payload_digest {
            return Err(StoreError::DigestMismatch {
                expected: header.payload_digest,
                found,
            });
        }
        let mut sections = Vec::new();
        let mut dec = Dec::new(payload);
        while !dec.is_done() {
            let tag = dec.u32()?;
            let len = dec.u64()?;
            let len = usize::try_from(len).map_err(|_| StoreError::Malformed("section length"))?;
            sections.push((tag, dec.take(len)?));
        }
        Ok(Self { header, sections })
    }

    /// The body of the first section tagged `tag`, if present.
    #[must_use]
    pub fn section(&self, tag: u32) -> Option<&'a [u8]> {
        self.sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, body)| *body)
    }

    /// The body of section `tag`, or [`StoreError::MissingSection`].
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingSection`] when absent.
    pub fn require(&self, tag: u32) -> Result<&'a [u8], StoreError> {
        self.section(tag).ok_or(StoreError::MissingSection(tag))
    }

    /// All sections in payload order (for diagnostics).
    #[must_use]
    pub fn sections(&self) -> &[(u32, &'a [u8])] {
        &self.sections
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut b = SnapshotBuilder::new(SnapshotKind::ClientState, 0xABCD);
        b.section(0x10, b"first");
        b.section(0x20, &[1, 2, 3, 4, 5, 6, 7, 8]);
        b.finish()
    }

    #[test]
    fn build_parse_round_trips() {
        let bytes = sample();
        let view = SnapshotView::parse(&bytes).unwrap();
        assert_eq!(view.header.version, FORMAT_VERSION);
        assert_eq!(view.header.kind, SnapshotKind::ClientState);
        assert_eq!(view.header.artifact_digest, 0xABCD);
        assert_eq!(view.section(0x10), Some(&b"first"[..]));
        assert_eq!(view.require(0x20).unwrap(), &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(view.section(0x99), None);
        assert!(matches!(
            view.require(0x99),
            Err(StoreError::MissingSection(0x99))
        ));
    }

    #[test]
    fn header_is_o1_verifiable() {
        let bytes = sample();
        // Header alone (no payload) passes the O(1) check...
        let header = Header::parse(&bytes[..HEADER_LEN]).unwrap();
        assert_eq!(header.payload_len as usize, bytes.len() - HEADER_LEN);
        // ...but the full parse of the same truncation reports Torn.
        assert!(matches!(
            SnapshotView::parse(&bytes[..HEADER_LEN]),
            Err(StoreError::Torn { .. })
        ));
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = sample();
        for cut in 0..bytes.len() {
            assert!(
                SnapshotView::parse(&bytes[..cut]).is_err(),
                "undetected truncation at {cut}"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = sample();
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x01;
            assert!(
                SnapshotView::parse(&corrupt).is_err(),
                "undetected bit flip at byte {i}"
            );
        }
    }

    #[test]
    fn future_versions_are_gated_not_misread() {
        let mut bytes = sample();
        // Rewrite the version field and re-seal the header checksum, as a
        // well-meaning future writer would.
        bytes[4..6].copy_from_slice(&2u16.to_le_bytes());
        let digest = fnv1a(&bytes[..32]);
        bytes[32..40].copy_from_slice(&digest.to_le_bytes());
        assert!(matches!(
            SnapshotView::parse(&bytes),
            Err(StoreError::UnsupportedVersion(2))
        ));
    }

    #[test]
    fn wrong_magic_and_kind_are_rejected() {
        let mut bytes = sample();
        bytes[0] = b'X';
        assert!(matches!(Header::parse(&bytes), Err(StoreError::BadMagic)));
        let mut bytes = sample();
        bytes[6] = 9;
        let digest = fnv1a(&bytes[..32]);
        bytes[32..40].copy_from_slice(&digest.to_le_bytes());
        assert!(matches!(Header::parse(&bytes), Err(StoreError::BadKind(9))));
    }
}

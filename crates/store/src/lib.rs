//! Durable session store for the SNE reproduction.
//!
//! The paper's configure-once/run-many split makes the mutable half of an
//! inference session (`ClientState` in `sne`) small and self-contained —
//! which makes it cheap to make *durable*. This crate provides the three
//! storage primitives the serve layer builds its park-to-disk tier and
//! crash recovery on:
//!
//! - [`codec`] — a hand-rolled little-endian binary codec ([`Enc`]/[`Dec`])
//!   plus the FNV-1a digest ([`fnv1a`], [`Fnv1a`]) used for every integrity
//!   check. No derive machinery: the on-disk format is an explicit,
//!   documented byte layout, not an accident of struct ordering.
//! - [`snapshot`] — the versioned snapshot container: a 40-byte
//!   O(1)-verifiable header (magic, format version, kind, artifact digest,
//!   payload length + digest, header checksum) followed by tagged,
//!   length-prefixed sections. Torn writes, flipped bytes, format bumps and
//!   wrong-model snapshots are all distinguishable, and none can be
//!   silently resumed.
//! - [`store`] — [`SessionStore`], a directory of snapshot files with
//!   atomic tmp-write/rename parks, a write-ahead `park.journal`, a
//!   configurable [`FsyncPolicy`], and a boot-time [recovery
//!   scan](SessionStore::recover) that deletes invalid files and reports
//!   what it discarded.
//!
//! This crate knows nothing about networks or engines: it stores and
//! validates bytes. `sne` encodes/decodes its state into this container and
//! `sne_serve` decides *when* to park, fault in, and recover.

pub mod codec;
pub mod error;
pub mod snapshot;
pub mod store;

pub use codec::{fnv1a, Dec, Enc, Fnv1a};
pub use error::StoreError;
pub use snapshot::{
    Header, SnapshotBuilder, SnapshotKind, SnapshotView, FORMAT_VERSION, HEADER_LEN, MAGIC,
};
pub use store::{FsyncPolicy, RecoveredSnapshot, RecoveryReport, SessionStore};

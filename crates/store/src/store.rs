//! The directory-backed session store: atomic snapshot files, a
//! write-ahead park journal, and the boot-time recovery scan.
//!
//! ## On-disk layout
//!
//! ```text
//! <dir>/s<hex-of-id>.snap   one snapshot per parked session (atomic)
//! <dir>/s<hex-of-id>.tmp    in-flight write (never read; deleted on scan)
//! <dir>/park.journal        append-only write-ahead journal
//! ```
//!
//! Session ids are arbitrary strings (they come from URL path segments), so
//! file names carry the id hex-encoded — bijective, case-safe and free of
//! path metacharacters.
//!
//! ## Write protocol (WAL)
//!
//! [`SessionStore::park`] first appends a `park` intent to the journal,
//! then writes the snapshot to a `.tmp` file, fsyncs it (policy), and
//! renames it over the `.snap` name. A crash at any point leaves either the
//! old snapshot, a complete new snapshot, or a `.tmp` orphan plus the old
//! snapshot — never a half-written `.snap` visible under its final name on
//! a POSIX filesystem. Even where rename atomicity is violated (or a torn
//! sector lands), every read path re-validates the snapshot's digests, so
//! the worst outcome is "snapshot discarded", never "wrong state resumed".
//!
//! ## Recovery
//!
//! [`SessionStore::recover`] deletes `.tmp` orphans, fully validates every
//! `.snap` (header + payload digest via the caller's validator, which also
//! binds the artifact digest to a registered model), deletes the invalid
//! ones, reconciles against the journal (a session journaled as parked
//! whose file is missing counts as lost), and rewrites the journal to the
//! surviving set.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufReader, Read, Write};
use std::path::{Path, PathBuf};

use crate::codec::fnv1a;

/// When the store issues `fsync` during a park.
///
/// `Always` is the crash-safe setting the kill -9 harness runs under: the
/// journal append and the snapshot bytes are both on stable storage before
/// the park is acknowledged. `Never` trades durability of the *latest*
/// parks for speed — after a power loss the store falls back to whatever
/// the kernel had written back, and the digest checks still guarantee
/// whatever is read back is internally consistent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// fsync the journal and every snapshot write (default).
    #[default]
    Always,
    /// Never fsync; rely on kernel writeback.
    Never,
}

/// One entry the recovery scan found and validated.
#[derive(Debug)]
pub struct RecoveredSnapshot {
    /// The session id the file name decodes to.
    pub id: String,
    /// The full, already-digest-validated snapshot bytes.
    pub bytes: Vec<u8>,
}

/// What the recovery scan did.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Validated snapshots, ready to resume.
    pub recovered: Vec<RecoveredSnapshot>,
    /// Files discarded: torn, digest-mismatched, unparseable names, or
    /// journaled-but-missing sessions.
    pub discarded: u64,
}

/// A directory of digest-checked session snapshots with a write-ahead park
/// journal.
#[derive(Debug)]
pub struct SessionStore {
    dir: PathBuf,
    journal: File,
    fsync: FsyncPolicy,
}

impl SessionStore {
    /// Opens (creating if needed) the store directory and its journal.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and journal-open failures.
    pub fn open(dir: impl Into<PathBuf>, fsync: FsyncPolicy) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let journal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join("park.journal"))?;
        Ok(Self {
            dir,
            journal,
            fsync,
        })
    }

    /// The store directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured fsync policy.
    #[must_use]
    pub fn fsync_policy(&self) -> FsyncPolicy {
        self.fsync
    }

    fn snap_path(&self, id: &str) -> PathBuf {
        self.dir.join(format!("s{}.snap", encode_id(id)))
    }

    fn maybe_sync(&self, file: &File) -> std::io::Result<()> {
        match self.fsync {
            FsyncPolicy::Always => file.sync_all(),
            FsyncPolicy::Never => Ok(()),
        }
    }

    fn sync_dir(&self) -> std::io::Result<()> {
        if self.fsync == FsyncPolicy::Always {
            // Persist the rename itself (the directory entry).
            File::open(&self.dir)?.sync_all()?;
        }
        Ok(())
    }

    fn journal_append(&mut self, line: &str) -> std::io::Result<()> {
        self.journal.write_all(line.as_bytes())?;
        match self.fsync {
            FsyncPolicy::Always => self.journal.sync_all(),
            FsyncPolicy::Never => Ok(()),
        }
    }

    /// Durably parks one session snapshot: journal intent first, then an
    /// atomic tmp-write/rename of the snapshot bytes.
    ///
    /// # Errors
    ///
    /// Propagates journal and file I/O failures; on error the previous
    /// snapshot of `id` (if any) is still intact.
    pub fn park(&mut self, id: &str, bytes: &[u8]) -> std::io::Result<()> {
        let hex = encode_id(id);
        self.journal_append(&format!(
            "park {hex} {} {:016x}\n",
            bytes.len(),
            fnv1a(bytes)
        ))?;
        let final_path = self.snap_path(id);
        let tmp_path = final_path.with_extension("tmp");
        {
            let mut tmp = File::create(&tmp_path)?;
            tmp.write_all(bytes)?;
            self.maybe_sync(&tmp)?;
        }
        std::fs::rename(&tmp_path, &final_path)?;
        self.sync_dir()
    }

    /// Reads back the parked snapshot of `id`, if one exists. The bytes are
    /// returned as stored — the caller validates digests on restore.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures other than "not found".
    pub fn load(&self, id: &str) -> std::io::Result<Option<Vec<u8>>> {
        match std::fs::read(self.snap_path(id)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Returns `true` if a snapshot file exists for `id`.
    #[must_use]
    pub fn contains(&self, id: &str) -> bool {
        self.snap_path(id).exists()
    }

    /// Removes the parked snapshot of `id` (journaled): the id is fully
    /// reclaimed — a later recovery scan cannot resurrect it.
    ///
    /// # Errors
    ///
    /// Propagates journal and unlink failures; a missing file is success.
    pub fn remove(&mut self, id: &str) -> std::io::Result<()> {
        self.journal_append(&format!("drop {}\n", encode_id(id)))?;
        match std::fs::remove_file(self.snap_path(id)) {
            Ok(()) => self.sync_dir(),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Number of `.snap` files currently in the store (diagnostics).
    ///
    /// # Errors
    ///
    /// Propagates directory-read failures.
    pub fn snapshot_count(&self) -> std::io::Result<usize> {
        let mut count = 0;
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.path().extension().is_some_and(|e| e == "snap") {
                count += 1;
            }
        }
        Ok(count)
    }

    /// The boot-time crash-recovery scan.
    ///
    /// Deletes `.tmp` orphans, reads every `.snap`, validates it with
    /// `validate` (the caller checks header digests, payload digest and
    /// artifact binding), deletes invalid files, reconciles the journal
    /// (journaled-live sessions with no surviving file count as discarded)
    /// and compacts the journal to the surviving set.
    ///
    /// # Errors
    ///
    /// Propagates directory-level I/O failures. Per-file read failures
    /// count as discards, not errors — a recovery scan must always get the
    /// server up.
    pub fn recover(
        &mut self,
        mut validate: impl FnMut(&str, &[u8]) -> bool,
    ) -> std::io::Result<RecoveryReport> {
        let mut report = RecoveryReport::default();
        let journaled = self.journaled_live()?;
        let mut seen: HashMap<String, bool> = HashMap::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let path = entry.path();
            let ext = path.extension().and_then(|e| e.to_str());
            match ext {
                Some("tmp") => {
                    // An in-flight write that never committed.
                    let _ = std::fs::remove_file(&path);
                    report.discarded += 1;
                }
                Some("snap") => {
                    let id = path
                        .file_stem()
                        .and_then(|s| s.to_str())
                        .and_then(decode_file_stem);
                    let Some(id) = id else {
                        let _ = std::fs::remove_file(&path);
                        report.discarded += 1;
                        continue;
                    };
                    let Ok(bytes) = std::fs::read(&path) else {
                        let _ = std::fs::remove_file(&path);
                        report.discarded += 1;
                        seen.insert(id, false);
                        continue;
                    };
                    if validate(&id, &bytes) {
                        seen.insert(id.clone(), true);
                        report.recovered.push(RecoveredSnapshot { id, bytes });
                    } else {
                        let _ = std::fs::remove_file(&path);
                        report.discarded += 1;
                        seen.insert(id, false);
                    }
                }
                _ => {}
            }
        }
        // Sessions the journal believes are parked but whose file vanished
        // (crash between journal append and rename) are lost sessions.
        for id in journaled {
            if !seen.contains_key(&id) {
                report.discarded += 1;
            }
        }
        // Deterministic adoption order regardless of directory iteration.
        report.recovered.sort_by(|a, b| a.id.cmp(&b.id));
        self.compact_journal(&report.recovered)?;
        Ok(report)
    }

    /// Ids whose most recent journal record is a `park` (best-effort: a
    /// torn trailing line — the expected artifact of a crash mid-append —
    /// is ignored).
    fn journaled_live(&self) -> std::io::Result<Vec<String>> {
        let path = self.dir.join("park.journal");
        let file = match File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut live: HashMap<String, bool> = HashMap::new();
        let mut reader = BufReader::new(file);
        let mut raw = Vec::new();
        reader.read_to_end(&mut raw)?;
        for line in raw.split(|&b| b == b'\n') {
            let Ok(line) = std::str::from_utf8(line) else {
                continue;
            };
            // Exact single-space separators: the hex field of an empty
            // session id is itself empty, which `split_whitespace` would
            // collapse away (misreading the length field as the id).
            let mut fields = line.split(' ');
            match (fields.next(), fields.next()) {
                (Some("park"), Some(hex)) => {
                    if let Some(id) = decode_hex(hex) {
                        live.insert(id, true);
                    }
                }
                (Some("drop"), Some(hex)) => {
                    if let Some(id) = decode_hex(hex) {
                        live.insert(id, false);
                    }
                }
                _ => {}
            }
        }
        Ok(live
            .into_iter()
            .filter_map(|(id, is_live)| is_live.then_some(id))
            .collect())
    }

    /// Rewrites the journal to exactly the surviving set (atomic, like a
    /// snapshot write).
    fn compact_journal(&mut self, survivors: &[RecoveredSnapshot]) -> std::io::Result<()> {
        let path = self.dir.join("park.journal");
        let tmp = self.dir.join("park.journal.compact");
        {
            let mut file = File::create(&tmp)?;
            for s in survivors {
                let line = format!(
                    "park {} {} {:016x}\n",
                    encode_id(&s.id),
                    s.bytes.len(),
                    fnv1a(&s.bytes)
                );
                file.write_all(line.as_bytes())?;
            }
            self.maybe_sync(&file)?;
        }
        std::fs::rename(&tmp, &path)?;
        self.sync_dir()?;
        // Re-open the append handle on the new inode.
        self.journal = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(())
    }
}

/// Hex-encodes a session id for use as a file name.
fn encode_id(id: &str) -> String {
    let mut out = String::with_capacity(id.len() * 2);
    for b in id.as_bytes() {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Decodes a `s<hex>` file stem back to the session id.
fn decode_file_stem(stem: &str) -> Option<String> {
    decode_hex(stem.strip_prefix('s')?)
}

fn decode_hex(hex: &str) -> Option<String> {
    if hex.len() % 2 != 0 {
        return None;
    }
    let mut bytes = Vec::with_capacity(hex.len() / 2);
    for pair in hex.as_bytes().chunks_exact(2) {
        let s = std::str::from_utf8(pair).ok()?;
        bytes.push(u8::from_str_radix(s, 16).ok()?);
    }
    String::from_utf8(bytes).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{SnapshotBuilder, SnapshotKind, SnapshotView};

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sne-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn snapshot(digest: u64, body: &[u8]) -> Vec<u8> {
        let mut b = SnapshotBuilder::new(SnapshotKind::ClientState, digest);
        b.section(1, body);
        b.finish()
    }

    fn valid(_: &str, bytes: &[u8]) -> bool {
        SnapshotView::parse(bytes).is_ok()
    }

    #[test]
    fn park_load_remove_round_trip() {
        let dir = tempdir("roundtrip");
        let mut store = SessionStore::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(store.load("dvs/0").unwrap(), None);
        let bytes = snapshot(7, b"payload");
        store.park("dvs/0", &bytes).unwrap();
        assert!(store.contains("dvs/0"));
        assert_eq!(store.load("dvs/0").unwrap(), Some(bytes.clone()));
        // Overwrite is atomic and wins.
        let newer = snapshot(7, b"newer");
        store.park("dvs/0", &newer).unwrap();
        assert_eq!(store.load("dvs/0").unwrap(), Some(newer));
        store.remove("dvs/0").unwrap();
        assert!(!store.contains("dvs/0"));
        assert_eq!(store.load("dvs/0").unwrap(), None);
        // Removing a missing id is fine.
        store.remove("dvs/0").unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hostile_ids_are_filesystem_safe() {
        let dir = tempdir("hostile");
        let mut store = SessionStore::open(&dir, FsyncPolicy::Never).unwrap();
        let ids = ["../../etc/passwd", "a b\tc", "日本語", ".", ""];
        for (i, id) in ids.iter().enumerate() {
            let bytes = snapshot(i as u64, id.as_bytes());
            store.park(id, &bytes).unwrap();
            assert_eq!(store.load(id).unwrap(), Some(bytes));
        }
        // Every file landed inside the store dir.
        let report = store.recover(valid).unwrap();
        assert_eq!(report.recovered.len(), ids.len());
        assert_eq!(report.discarded, 0);
        let mut recovered: Vec<&str> = report.recovered.iter().map(|r| r.id.as_str()).collect();
        recovered.sort_unstable();
        let mut expected: Vec<&str> = ids.to_vec();
        expected.sort_unstable();
        assert_eq!(recovered, expected);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_discards_torn_and_corrupt_files() {
        let dir = tempdir("recover");
        let mut store = SessionStore::open(&dir, FsyncPolicy::Always).unwrap();
        store.park("good", &snapshot(1, b"good")).unwrap();
        store.park("torn", &snapshot(1, b"torn-victim")).unwrap();
        store.park("flipped", &snapshot(1, b"flip-victim")).unwrap();
        store.park("vanished", &snapshot(1, b"gone")).unwrap();
        drop(store);

        // Injected faults: truncate one, flip a payload byte in another,
        // delete a journaled one, and strand a tmp orphan.
        let paths: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "snap"))
            .collect();
        for path in &paths {
            let stem = path.file_stem().unwrap().to_str().unwrap();
            let id = decode_file_stem(stem).unwrap();
            match id.as_str() {
                "torn" => {
                    let bytes = std::fs::read(path).unwrap();
                    std::fs::write(path, &bytes[..bytes.len() - 3]).unwrap();
                }
                "flipped" => {
                    let mut bytes = std::fs::read(path).unwrap();
                    let last = bytes.len() - 1;
                    bytes[last] ^= 0xFF;
                    std::fs::write(path, &bytes).unwrap();
                }
                "vanished" => std::fs::remove_file(path).unwrap(),
                _ => {}
            }
        }
        std::fs::write(dir.join("sdead.tmp"), b"half a write").unwrap();

        let mut store = SessionStore::open(&dir, FsyncPolicy::Always).unwrap();
        let report = store.recover(valid).unwrap();
        assert_eq!(report.recovered.len(), 1);
        assert_eq!(report.recovered[0].id, "good");
        // torn + flipped + vanished(journal) + tmp orphan.
        assert_eq!(report.discarded, 4);
        assert!(!dir.join("sdead.tmp").exists());

        // A second scan is clean: the journal was compacted to survivors.
        let report = store.recover(valid).unwrap();
        assert_eq!(report.recovered.len(), 1);
        assert_eq!(report.discarded, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn id_encoding_is_bijective() {
        for id in ["plain", "with/slash", "..", "", "ü"] {
            assert_eq!(decode_hex(&encode_id(id)).as_deref(), Some(id));
        }
        assert_eq!(decode_hex("zz"), None);
        assert_eq!(decode_hex("abc"), None);
        assert_eq!(decode_file_stem("xab"), None);
    }
}

//! Supply-voltage scaling (§IV-C of the paper).
//!
//! The paper extrapolates the 0.8 V results to 0.9 V, quoting 4.03 TSOP/s/W
//! and 0.248 pJ/SOP (down from 4.54 TSOP/s/W and 0.221 pJ/SOP). That
//! corresponds to an effective energy scaling of `(V/V₀)^α` with
//! `α ≈ 0.98` — weaker than the ideal `V²` CMOS scaling because only part of
//! the design (the standard-cell logic, not the whole latch-based memory
//! periphery biasing) tracks the core supply in the authors' extrapolation.
//! The exponent is therefore calibrated to reproduce the published 0.9 V
//! numbers and documented as a model assumption.

use serde::{Deserialize, Serialize};

/// Voltage-scaling model for energy per operation and efficiency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VoltageScaling {
    /// Reference supply voltage (0.8 V in the paper).
    pub reference_voltage: f64,
    /// Effective exponent of the energy-vs-voltage law.
    pub exponent: f64,
}

impl Default for VoltageScaling {
    fn default() -> Self {
        // Calibrated so that 0.221 pJ/SOP at 0.8 V becomes 0.248 pJ/SOP at 0.9 V.
        let exponent = (0.248f64 / 0.221).ln() / (0.9f64 / 0.8).ln();
        Self {
            reference_voltage: 0.8,
            exponent,
        }
    }
}

impl VoltageScaling {
    /// Ideal quadratic CMOS dynamic-energy scaling.
    #[must_use]
    pub fn quadratic() -> Self {
        Self {
            reference_voltage: 0.8,
            exponent: 2.0,
        }
    }

    /// Scales an energy-per-operation value from the reference voltage to
    /// `voltage`.
    #[must_use]
    pub fn scale_energy(&self, energy_at_reference: f64, voltage: f64) -> f64 {
        energy_at_reference * (voltage / self.reference_voltage).powf(self.exponent)
    }

    /// Scales an efficiency value (inverse energy) from the reference voltage
    /// to `voltage`.
    #[must_use]
    pub fn scale_efficiency(&self, efficiency_at_reference: f64, voltage: f64) -> f64 {
        efficiency_at_reference / (voltage / self.reference_voltage).powf(self.exponent)
    }

    /// Scales a power value assuming the same workload (energy × fixed rate).
    #[must_use]
    pub fn scale_power(&self, power_at_reference: f64, voltage: f64) -> f64 {
        self.scale_energy(power_at_reference, voltage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scaling_reproduces_the_paper_09v_numbers() {
        let scaling = VoltageScaling::default();
        let energy = scaling.scale_energy(0.221, 0.9);
        assert!(
            (energy - 0.248).abs() < 1e-3,
            "0.9 V energy {energy} should be ~0.248 pJ"
        );
        let eff = scaling.scale_efficiency(4.54, 0.9);
        assert!(
            (eff - 4.05).abs() < 0.05,
            "0.9 V efficiency {eff} should be ~4.03 TSOP/s/W"
        );
    }

    #[test]
    fn reference_voltage_is_identity() {
        let scaling = VoltageScaling::default();
        assert!((scaling.scale_energy(0.221, 0.8) - 0.221).abs() < 1e-12);
        assert!((scaling.scale_efficiency(4.54, 0.8) - 4.54).abs() < 1e-12);
    }

    #[test]
    fn quadratic_scaling_is_stronger_than_calibrated() {
        let calibrated = VoltageScaling::default();
        let quadratic = VoltageScaling::quadratic();
        assert!(quadratic.scale_energy(0.221, 0.9) > calibrated.scale_energy(0.221, 0.9));
        assert!(calibrated.exponent < 1.5);
    }

    #[test]
    fn lower_voltage_lowers_energy() {
        let scaling = VoltageScaling::default();
        assert!(scaling.scale_energy(0.221, 0.7) < 0.221);
        assert!(scaling.scale_power(11.29, 0.7) < 11.29);
    }
}

//! Performance model (the GSOP/s series of Fig. 5b).

use serde::{Deserialize, Serialize};
use sne_sim::{CycleStats, SneConfig};

/// Peak and achieved throughput of an SNE instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PerformanceModel;

impl PerformanceModel {
    /// Creates the performance model.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// Peak throughput in GSOP/s: one state update per cluster per cycle
    /// (51.2 GSOP/s for the 8-slice instance at 400 MHz).
    #[must_use]
    pub fn peak_gsops(&self, config: &SneConfig) -> f64 {
        config.peak_gsops()
    }

    /// Throughput achieved by a measured run, in GSOP/s.
    #[must_use]
    pub fn achieved_gsops(&self, config: &SneConfig, stats: &CycleStats) -> f64 {
        stats.achieved_gsops(config.clock_mhz)
    }

    /// Utilization of the peak throughput by a measured run, in `[0, 1]`.
    #[must_use]
    pub fn utilization(&self, config: &SneConfig, stats: &CycleStats) -> f64 {
        let peak = self.peak_gsops(config);
        if peak == 0.0 {
            0.0
        } else {
            self.achieved_gsops(config, stats) / peak
        }
    }

    /// Time to consume one input event, in nanoseconds (120 ns at 400 MHz).
    #[must_use]
    pub fn event_latency_ns(&self, config: &SneConfig) -> f64 {
        config.event_consumption_ns()
    }

    /// Inference duration in milliseconds for a measured run.
    #[must_use]
    pub fn inference_time_ms(&self, config: &SneConfig, stats: &CycleStats) -> f64 {
        stats.duration_ms(config.clock_mhz)
    }

    /// Sustainable inference rate (inferences per second) for a measured run.
    #[must_use]
    pub fn inference_rate(&self, config: &SneConfig, stats: &CycleStats) -> f64 {
        let ms = self.inference_time_ms(config, stats);
        if ms <= 0.0 {
            0.0
        } else {
            1_000.0 / ms
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_matches_fig5b_series() {
        let model = PerformanceModel::new();
        let expected = [(1usize, 6.4), (2, 12.8), (4, 25.6), (8, 51.2)];
        for (slices, gsops) in expected {
            assert!((model.peak_gsops(&SneConfig::with_slices(slices)) - gsops).abs() < 1e-9);
        }
    }

    #[test]
    fn event_latency_is_120ns() {
        let model = PerformanceModel::new();
        assert!((model.event_latency_ns(&SneConfig::default()) - 120.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_is_achieved_over_peak() {
        let model = PerformanceModel::new();
        let config = SneConfig::with_slices(8);
        // Fully-active run: 128 SOPs per cycle.
        let stats = CycleStats {
            total_cycles: 1_000,
            synaptic_ops: 128_000,
            ..CycleStats::default()
        };
        assert!((model.utilization(&config, &stats) - 1.0).abs() < 1e-9);
        let half = CycleStats {
            total_cycles: 1_000,
            synaptic_ops: 64_000,
            ..CycleStats::default()
        };
        assert!((model.utilization(&config, &half) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn inference_rate_inverts_inference_time() {
        let model = PerformanceModel::new();
        let config = SneConfig::default();
        // 7.1 ms at 400 MHz = 2.84e6 cycles -> ~141 inf/s.
        let stats = CycleStats {
            total_cycles: 2_840_000,
            ..CycleStats::default()
        };
        let ms = model.inference_time_ms(&config, &stats);
        assert!((ms - 7.1).abs() < 0.01);
        assert!((model.inference_rate(&config, &stats) - 140.8).abs() < 1.0);
        let zero = CycleStats::default();
        assert_eq!(model.inference_rate(&config, &zero), 0.0);
    }
}

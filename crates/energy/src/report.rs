//! Text rendering of the reproduced figures and tables.
//!
//! The benchmark binaries in `sne-bench` print the same rows/series the
//! paper reports; the formatting helpers live here so that examples and
//! integration tests can reuse them.

use crate::area::AreaBreakdown;
use crate::comparison::PlatformRecord;
use crate::energy::EnergyReport;
use crate::power::PowerBreakdown;

/// Formats one Fig. 4 row: the area breakdown of a slice configuration.
#[must_use]
pub fn format_area_row(slices: usize, breakdown: &AreaBreakdown) -> String {
    let values = breakdown.values();
    let mut row = format!("{slices:>2} slices |");
    for (label, value) in AreaBreakdown::COMPONENTS.iter().zip(values) {
        row.push_str(&format!(" {label}: {value:7.1} kGE |"));
    }
    row.push_str(&format!(" total: {:8.1} kGE", breakdown.total()));
    row
}

/// Formats one Fig. 5a row: the power breakdown of a slice configuration.
#[must_use]
pub fn format_power_row(slices: usize, breakdown: &PowerBreakdown) -> String {
    format!(
        "{slices:>2} slices | dynamic: {:6.2} mW | leakage: {:5.3} mW | total: {:6.2} mW",
        breakdown.dynamic(),
        breakdown.leakage,
        breakdown.total()
    )
}

/// Formats one Fig. 5b row: performance and energy per operation.
#[must_use]
pub fn format_perf_row(slices: usize, gsops: f64, energy_per_sop_pj: f64) -> String {
    format!(
        "{slices:>2} slices | performance: {gsops:5.1} GSOP/s | energy: {energy_per_sop_pj:.3} pJ/SOP"
    )
}

/// Formats one Table I row.
#[must_use]
pub fn format_table1_row(
    dataset: &str,
    baseline_accuracy: f64,
    quantized_accuracy: f64,
    energy_range_uj: (f64, f64),
    rate_range_inf_s: (f64, f64),
) -> String {
    format!(
        "{dataset:<16} | SRM: {:5.2}% | SNE-LIF-4b: {:5.2}% | energy: {:6.1}-{:6.1} uJ/inf | rate: {:6.1}-{:6.1} inf/s",
        baseline_accuracy * 100.0,
        quantized_accuracy * 100.0,
        energy_range_uj.0,
        energy_range_uj.1,
        rate_range_inf_s.0,
        rate_range_inf_s.1
    )
}

/// Formats one Table II row.
#[must_use]
pub fn format_platform_row(record: &PlatformRecord) -> String {
    fn opt_f(v: Option<f64>, width: usize, precision: usize) -> String {
        v.map_or_else(
            || format!("{:>width$}", "-"),
            |x| format!("{x:>width$.precision$}"),
        )
    }
    fn opt_u(v: Option<u64>, width: usize) -> String {
        v.map_or_else(|| format!("{:>width$}", "-"), |x| format!("{x:>width$}"))
    }
    format!(
        "{:<16} {:<8} {:<5} {:<9} {:<12} {:<9} {} {} {} {} {} {} {} {:<5} {}",
        record.name,
        record.implementation,
        record.technology,
        record.neuron_model,
        record.learning,
        record.network_type,
        opt_u(record.neurons, 8),
        opt_f(record.neuron_area_um2, 9, 1),
        opt_f(record.performance_gops, 7, 1),
        opt_f(record.efficiency_tops_w, 7, 2),
        opt_f(record.energy_per_sop_pj, 8, 3),
        opt_f(record.frequency_mhz, 7, 0),
        opt_f(record.power_mw, 8, 2),
        record.bits.as_deref().unwrap_or("-"),
        opt_f(record.voltage, 5, 2),
    )
}

/// Formats an energy report produced by a simulator run.
#[must_use]
pub fn format_energy_report(label: &str, report: &EnergyReport) -> String {
    format!(
        "{label:<24} | {:8.3} ms | {:7.2} mW | {:8.2} uJ | {:.3} pJ/SOP | {:.2} TSOP/s/W | {} SOPs",
        report.duration_ms,
        report.average_power_mw,
        report.energy_uj,
        report.energy_per_sop_pj,
        report.efficiency_tsops_w,
        report.synaptic_ops
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::area::AreaModel;
    use crate::comparison::sne_record;
    use crate::power::PowerModel;
    use sne_sim::SneConfig;

    #[test]
    fn area_row_mentions_every_component() {
        let breakdown = AreaModel::default().breakdown(&SneConfig::with_slices(8));
        let row = format_area_row(8, &breakdown);
        for component in AreaBreakdown::COMPONENTS {
            assert!(row.contains(component), "row should mention {component}");
        }
        assert!(row.contains("total"));
    }

    #[test]
    fn power_row_contains_dynamic_and_leakage() {
        let breakdown =
            PowerModel::default().breakdown_at_activity(&SneConfig::with_slices(4), 1.0);
        let row = format_power_row(4, &breakdown);
        assert!(row.contains("dynamic"));
        assert!(row.contains("leakage"));
    }

    #[test]
    fn perf_row_formats_values() {
        let row = format_perf_row(8, 51.2, 0.221);
        assert!(row.contains("51.2"));
        assert!(row.contains("0.221"));
    }

    #[test]
    fn table1_row_contains_both_accuracies() {
        let row = format_table1_row("IBM DVS Gest.", 0.9242, 0.928, (80.0, 261.0), (141.0, 43.0));
        assert!(row.contains("92.42"));
        assert!(row.contains("92.80"));
        assert!(row.contains("261.0"));
    }

    #[test]
    fn platform_row_handles_missing_fields() {
        let record = sne_record(&SneConfig::with_slices(8));
        let row = format_platform_row(&record);
        assert!(row.contains("SNE"));
        let mut missing = record;
        missing.power_mw = None;
        missing.neurons = None;
        let row = format_platform_row(&missing);
        assert!(row.contains('-'));
    }

    #[test]
    fn energy_report_row_is_labelled() {
        let report = EnergyReport {
            average_power_mw: 11.29,
            duration_ms: 7.1,
            energy_uj: 80.2,
            energy_per_sop_pj: 0.221,
            efficiency_tsops_w: 4.52,
            synaptic_ops: 1000,
        };
        let row = format_energy_report("dvs-gesture best", &report);
        assert!(row.contains("dvs-gesture best"));
        assert!(row.contains("80.2"));
    }
}

//! Energy and efficiency model.
//!
//! Combines the power model with the cycle counts produced by the simulator
//! to obtain the quantities the paper reports: energy per synaptic operation
//! (0.221 pJ/SOP), energy efficiency (4.54 TSOP/s/W) and energy per inference
//! (80–261 µJ on DVS-Gesture, Table I).

use serde::{Deserialize, Serialize};
use sne_sim::{CycleStats, SneConfig};

use crate::performance::PerformanceModel;
use crate::power::PowerModel;

/// Energy figures of one measured run (or one operating point).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Average power during the run, in mW.
    pub average_power_mw: f64,
    /// Run duration, in ms.
    pub duration_ms: f64,
    /// Total energy, in µJ.
    pub energy_uj: f64,
    /// Energy per synaptic operation, in pJ.
    pub energy_per_sop_pj: f64,
    /// Achieved efficiency, in TSOP/s/W.
    pub efficiency_tsops_w: f64,
    /// Synaptic operations performed.
    pub synaptic_ops: u64,
}

/// The energy model.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyModel {
    power: PowerModel,
    performance: PerformanceModel,
}

impl EnergyModel {
    /// Creates the energy model with default technology parameters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the energy model from an explicit power model.
    #[must_use]
    pub fn with_power_model(power: PowerModel) -> Self {
        Self {
            power,
            performance: PerformanceModel::new(),
        }
    }

    /// The underlying power model.
    #[must_use]
    pub fn power_model(&self) -> &PowerModel {
        &self.power
    }

    /// Nominal energy per SOP at full update activity, in pJ (the Fig. 5b /
    /// Table II headline: 0.221 pJ for 8 slices).
    #[must_use]
    pub fn nominal_energy_per_sop_pj(&self, config: &SneConfig) -> f64 {
        self.power.energy_per_sop_pj(config)
    }

    /// Nominal efficiency at full update activity, in TSOP/s/W
    /// (4.54 TSOP/s/W for 8 slices).
    #[must_use]
    pub fn nominal_efficiency_tsops_w(&self, config: &SneConfig) -> f64 {
        1.0 / self.nominal_energy_per_sop_pj(config)
    }

    /// Energy report for a measured run.
    #[must_use]
    pub fn report(&self, config: &SneConfig, stats: &CycleStats) -> EnergyReport {
        let average_power_mw = self.power.average_power_mw(config, stats);
        let duration_ms = stats.duration_ms(config.clock_mhz);
        // mW × ms = µJ.
        let energy_uj = average_power_mw * duration_ms;
        let energy_per_sop_pj = if stats.synaptic_ops == 0 {
            0.0
        } else {
            energy_uj * 1e6 / stats.synaptic_ops as f64
        };
        let efficiency_tsops_w = if energy_per_sop_pj > 0.0 {
            1.0 / energy_per_sop_pj
        } else {
            0.0
        };
        EnergyReport {
            average_power_mw,
            duration_ms,
            energy_uj,
            energy_per_sop_pj,
            efficiency_tsops_w,
            synaptic_ops: stats.synaptic_ops,
        }
    }

    /// Energy of an inference whose duration and activity are known, assuming
    /// the engine runs at the paper's benchmark activity (every cluster
    /// updating): this is the simple `power × time` estimate the paper uses
    /// for Table I.
    #[must_use]
    pub fn inference_energy_uj(&self, config: &SneConfig, inference_time_ms: f64) -> f64 {
        self.power.peak_total_mw(config) * inference_time_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_headline_numbers_match_the_paper() {
        let model = EnergyModel::new();
        let config = SneConfig::with_slices(8);
        assert!((model.nominal_energy_per_sop_pj(&config) - 0.221).abs() < 1e-9);
        let eff = model.nominal_efficiency_tsops_w(&config);
        assert!(
            (eff - 4.52).abs() < 0.05,
            "efficiency {eff} should be ~4.5 TSOP/s/W"
        );
    }

    #[test]
    fn fully_active_run_reproduces_the_nominal_energy_per_sop() {
        let model = EnergyModel::new();
        let config = SneConfig::with_slices(8);
        // Fully active: 128 clusters × 1 SOP per cycle for 1M cycles.
        let stats = CycleStats {
            total_cycles: 1_000_000,
            synaptic_ops: 128_000_000,
            active_cluster_cycles: 128_000_000,
            gated_cluster_cycles: 0,
            ..CycleStats::default()
        };
        let report = model.report(&config, &stats);
        assert!((report.energy_per_sop_pj - 0.221).abs() < 0.01);
        assert!((report.average_power_mw - 11.29).abs() < 0.1);
    }

    #[test]
    fn sparse_runs_spend_less_total_energy() {
        let model = EnergyModel::new();
        let config = SneConfig::with_slices(8);
        let busy = CycleStats {
            total_cycles: 1_000_000,
            synaptic_ops: 128_000_000,
            active_cluster_cycles: 128_000_000,
            ..CycleStats::default()
        };
        let sparse = CycleStats {
            total_cycles: 1_000_000,
            synaptic_ops: 12_800_000,
            active_cluster_cycles: 12_800_000,
            gated_cluster_cycles: 115_200_000,
            ..CycleStats::default()
        };
        let busy_report = model.report(&config, &busy);
        let sparse_report = model.report(&config, &sparse);
        assert!(sparse_report.energy_uj < busy_report.energy_uj);
        // Per-operation energy rises when the fixed infrastructure is
        // amortized over fewer operations.
        assert!(sparse_report.energy_per_sop_pj > busy_report.energy_per_sop_pj);
    }

    #[test]
    fn table1_energy_range_is_reproduced() {
        let model = EnergyModel::new();
        let config = SneConfig::with_slices(8);
        // Paper: 7.1 ms best case -> 80 µJ, 23.12 ms worst case -> 261 µJ.
        let best = model.inference_energy_uj(&config, 7.1);
        let worst = model.inference_energy_uj(&config, 23.12);
        assert!(
            (best - 80.0).abs() < 2.0,
            "best-case energy {best} should be ~80 uJ"
        );
        assert!(
            (worst - 261.0).abs() < 4.0,
            "worst-case energy {worst} should be ~261 uJ"
        );
    }

    #[test]
    fn empty_run_reports_zero_sop_energy() {
        let model = EnergyModel::new();
        let report = model.report(&SneConfig::default(), &CycleStats::default());
        assert_eq!(report.energy_per_sop_pj, 0.0);
        assert_eq!(report.efficiency_tsops_w, 0.0);
        assert_eq!(report.energy_uj, 0.0);
    }
}

//! Area model (Fig. 4 of the paper).
//!
//! Fig. 4 reports a post-synthesis gate-equivalent breakdown for 1, 2, 4 and
//! 8 slices. The model below embeds those calibration points and decomposes
//! each component into a fixed part (shared infrastructure such as the two
//! streamers) and a per-slice part, so that arbitrary slice counts and
//! scaled cluster/neuron geometries can be explored. At the published
//! configurations the model reproduces the published numbers exactly.

use serde::{Deserialize, Serialize};
use sne_sim::SneConfig;

use crate::technology::TechnologyParams;

/// Area of every SNE component, in kGE.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AreaBreakdown {
    /// Latch-based neuron state memories (the dominant component).
    pub memory: f64,
    /// Cluster LIF datapaths.
    pub clusters: f64,
    /// Streamer (DMA) engines.
    pub streamers: f64,
    /// C-XBAR interconnect.
    pub interconnect: f64,
    /// Configuration and pipeline registers.
    pub registers: f64,
    /// Control logic (sequencers, decoders, collectors).
    pub control: f64,
    /// Event FIFOs.
    pub fifos: f64,
    /// Address filters and shifters.
    pub filters: f64,
}

impl AreaBreakdown {
    /// Total area in kGE.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.memory
            + self.clusters
            + self.streamers
            + self.interconnect
            + self.registers
            + self.control
            + self.fifos
            + self.filters
    }

    /// Component labels in the order used by Fig. 4.
    pub const COMPONENTS: [&'static str; 8] = [
        "Memory",
        "Clusters",
        "Streamers",
        "Interconnect",
        "Registers",
        "Control",
        "Fifos",
        "Filters",
    ];

    /// Component values in the same order as [`AreaBreakdown::COMPONENTS`].
    #[must_use]
    pub fn values(&self) -> [f64; 8] {
        [
            self.memory,
            self.clusters,
            self.streamers,
            self.interconnect,
            self.registers,
            self.control,
            self.fifos,
            self.filters,
        ]
    }
}

/// Calibration point: the Fig. 4 breakdown for one slice count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct CalibrationPoint {
    slices: usize,
    breakdown: AreaBreakdown,
}

/// The published Fig. 4 data (kGE).
fn calibration_table() -> [CalibrationPoint; 4] {
    [
        CalibrationPoint {
            slices: 1,
            breakdown: AreaBreakdown {
                memory: 91.2,
                clusters: 12.5,
                streamers: 30.0,
                interconnect: 0.8,
                registers: 51.4,
                control: 7.1,
                fifos: 27.8,
                filters: 28.9,
            },
        },
        CalibrationPoint {
            slices: 2,
            breakdown: AreaBreakdown {
                memory: 182.4,
                clusters: 24.9,
                streamers: 30.0,
                interconnect: 1.4,
                registers: 88.5,
                control: 13.4,
                fifos: 56.3,
                filters: 57.8,
            },
        },
        CalibrationPoint {
            slices: 4,
            breakdown: AreaBreakdown {
                memory: 364.9,
                clusters: 50.0,
                streamers: 30.0,
                interconnect: 2.8,
                registers: 161.9,
                control: 31.3,
                fifos: 106.0,
                filters: 115.6,
            },
        },
        CalibrationPoint {
            slices: 8,
            breakdown: AreaBreakdown {
                memory: 729.8,
                clusters: 99.9,
                streamers: 30.0,
                interconnect: 6.2,
                registers: 306.2,
                control: 65.0,
                fifos: 212.3,
                filters: 231.3,
            },
        },
    ]
}

/// The area model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    technology: TechnologyParams,
}

impl AreaModel {
    /// Creates an area model with explicit technology parameters.
    #[must_use]
    pub fn new(technology: TechnologyParams) -> Self {
        Self { technology }
    }

    /// Technology parameters in use.
    #[must_use]
    pub fn technology(&self) -> TechnologyParams {
        self.technology
    }

    /// Area breakdown for a configuration.
    ///
    /// For the published slice counts (1, 2, 4, 8) with the default cluster
    /// geometry the published Fig. 4 numbers are returned exactly; other
    /// slice counts use a fixed + per-slice decomposition derived from the
    /// 1- and 8-slice calibration points, and non-default cluster/neuron
    /// geometries scale the memory, cluster, FIFO and filter components
    /// proportionally to their capacity.
    #[must_use]
    pub fn breakdown(&self, config: &SneConfig) -> AreaBreakdown {
        let table = calibration_table();
        let baseline = SneConfig::default();
        // Scaling of per-slice datapath/memory components with the cluster
        // geometry relative to the paper's 16 clusters × 64 neurons.
        let neuron_scale = (config.clusters_per_slice * config.neurons_per_cluster) as f64
            / (baseline.clusters_per_slice * baseline.neurons_per_cluster) as f64;
        let cluster_scale = config.clusters_per_slice as f64 / baseline.clusters_per_slice as f64;

        let exact = table
            .iter()
            .find(|p| p.slices == config.num_slices)
            .map(|p| p.breakdown);
        let mut breakdown = exact.unwrap_or_else(|| self.interpolate(config.num_slices));
        // Streamer area scales with the number of streamers (2 in the paper).
        breakdown.streamers *= config.num_streamers as f64 / baseline.num_streamers as f64;
        breakdown.memory *= neuron_scale;
        breakdown.clusters *= cluster_scale;
        breakdown.fifos *= cluster_scale;
        breakdown.filters *= cluster_scale;
        breakdown
    }

    /// Fixed + per-slice decomposition derived from the 1- and 8-slice points.
    fn interpolate(&self, slices: usize) -> AreaBreakdown {
        let table = calibration_table();
        let one = table[0].breakdown;
        let eight = table[3].breakdown;
        let per_slice = |a: f64, b: f64| (b - a) / 7.0;
        let fixed = |a: f64, b: f64| a - per_slice(a, b);
        let s = slices as f64;
        let component = |a: f64, b: f64| fixed(a, b) + per_slice(a, b) * s;
        AreaBreakdown {
            memory: component(one.memory, eight.memory),
            clusters: component(one.clusters, eight.clusters),
            streamers: one.streamers,
            interconnect: component(one.interconnect, eight.interconnect),
            registers: component(one.registers, eight.registers),
            control: component(one.control, eight.control),
            fifos: component(one.fifos, eight.fifos),
            filters: component(one.filters, eight.filters),
        }
    }

    /// Total area in kGE for a configuration.
    #[must_use]
    pub fn total_kge(&self, config: &SneConfig) -> f64 {
        self.breakdown(config).total()
    }

    /// Total area in mm² for a configuration.
    #[must_use]
    pub fn total_mm2(&self, config: &SneConfig) -> f64 {
        self.technology.kge_to_mm2(self.total_kge(config))
    }

    /// Area per neuron in µm² (Table II reports 19.9 µm² for the 8-slice
    /// instance, counting the neuron state memory and the cluster datapaths).
    #[must_use]
    pub fn neuron_area_um2(&self, config: &SneConfig) -> f64 {
        let breakdown = self.breakdown(config);
        let neuron_kge = breakdown.memory + breakdown.clusters;
        self.technology.kge_to_um2(neuron_kge) / config.total_neurons() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_points_are_reproduced_exactly() {
        let model = AreaModel::default();
        let expected_totals = [(1usize, 249.7), (2, 454.7), (4, 862.5), (8, 1680.7)];
        for (slices, total) in expected_totals {
            let b = model.breakdown(&SneConfig::with_slices(slices));
            assert!(
                (b.total() - total).abs() < 0.11,
                "total for {slices} slices: {} vs {total}",
                b.total()
            );
        }
        let eight = model.breakdown(&SneConfig::with_slices(8));
        assert!((eight.memory - 729.8).abs() < 1e-9);
        assert!((eight.filters - 231.3).abs() < 1e-9);
    }

    #[test]
    fn memory_dominates_every_configuration() {
        let model = AreaModel::default();
        for slices in [1, 2, 4, 8] {
            let b = model.breakdown(&SneConfig::with_slices(slices));
            for (label, value) in AreaBreakdown::COMPONENTS.iter().zip(b.values()) {
                if *label != "Memory" {
                    assert!(b.memory > value, "memory should dominate {label}");
                }
            }
        }
    }

    #[test]
    fn streamer_area_is_fixed_across_slices() {
        let model = AreaModel::default();
        let one = model.breakdown(&SneConfig::with_slices(1));
        let eight = model.breakdown(&SneConfig::with_slices(8));
        assert_eq!(one.streamers, eight.streamers);
    }

    #[test]
    fn interpolation_is_monotonic_in_slices() {
        let model = AreaModel::default();
        let mut last = 0.0;
        for slices in 1..=16 {
            let total = model.total_kge(&SneConfig::with_slices(slices));
            assert!(total > last, "area must grow with slices");
            last = total;
        }
    }

    #[test]
    fn neuron_area_matches_table_ii() {
        let model = AreaModel::default();
        let area = model.neuron_area_um2(&SneConfig::with_slices(8));
        assert!(
            (area - 19.9).abs() < 0.5,
            "neuron area {area} should be close to 19.9 um2"
        );
    }

    #[test]
    fn doubling_neurons_scales_memory() {
        let model = AreaModel::default();
        let base = model.breakdown(&SneConfig::with_slices(8));
        let big = model.breakdown(&SneConfig {
            neurons_per_cluster: 128,
            ..SneConfig::with_slices(8)
        });
        assert!((big.memory / base.memory - 2.0).abs() < 1e-9);
        assert_eq!(big.clusters, base.clusters);
    }

    #[test]
    fn total_mm2_is_consistent_with_kge() {
        let model = AreaModel::default();
        let config = SneConfig::with_slices(8);
        let mm2 = model.total_mm2(&config);
        let kge = model.total_kge(&config);
        assert!((mm2 - model.technology().kge_to_mm2(kge)).abs() < 1e-12);
        assert!(
            mm2 > 0.1 && mm2 < 1.0,
            "8-slice SNE should be a fraction of a mm2, got {mm2}"
        );
    }
}

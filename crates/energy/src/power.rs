//! Power model (Fig. 5a of the paper).
//!
//! The paper estimates power from post-synthesis switching activity at
//! 400 MHz, 0.8 V TT, for a benchmark layer in which input events cause a
//! neuron state update on every cluster of every slice while the layer emits
//! 5 % output activity. Dynamic power dominates. The model below is
//! calibrated on the published energy-per-SOP values of Fig. 5b (which,
//! multiplied by the peak SOP rate, give the Fig. 5a power): the dynamic
//! power scales with the fraction of active cluster-cycles, and the leakage
//! scales with the instance area.

use serde::{Deserialize, Serialize};
use sne_sim::{CycleStats, SneConfig};

use crate::area::AreaModel;
use crate::technology::TechnologyParams;

/// Published energy per synaptic operation (pJ/SOP) at full update activity
/// for 1, 2, 4 and 8 slices (Fig. 5b). The fixed streamer/controller power is
/// amortized over more parallel updates as slices are added, which is why the
/// energy per operation decreases slightly.
const ENERGY_PER_SOP_PJ: [(usize, f64); 4] = [(1, 0.232), (2, 0.228), (4, 0.225), (8, 0.221)];

/// Power decomposition in milliwatts.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Dynamic power of the cluster datapaths and state memories.
    pub dynamic_clusters: f64,
    /// Dynamic power of the shared infrastructure (streamers, crossbar,
    /// collector, configuration logic).
    pub dynamic_infrastructure: f64,
    /// Leakage power.
    pub leakage: f64,
}

impl PowerBreakdown {
    /// Total power in mW.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.dynamic_clusters + self.dynamic_infrastructure + self.leakage
    }

    /// Total dynamic power in mW.
    #[must_use]
    pub fn dynamic(&self) -> f64 {
        self.dynamic_clusters + self.dynamic_infrastructure
    }
}

/// The calibrated power model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    technology: TechnologyParams,
    area: AreaModel,
    /// Fraction of the full-activity dynamic power drawn by the shared
    /// infrastructure (streamers, crossbar, sequencers) rather than the
    /// cluster datapaths.
    infrastructure_fraction: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        Self {
            technology: TechnologyParams::default(),
            area: AreaModel::default(),
            infrastructure_fraction: 0.12,
        }
    }
}

impl PowerModel {
    /// Creates a power model with explicit technology parameters.
    #[must_use]
    pub fn new(technology: TechnologyParams) -> Self {
        Self {
            technology,
            area: AreaModel::new(technology),
            ..Self::default()
        }
    }

    /// Technology parameters in use.
    #[must_use]
    pub fn technology(&self) -> TechnologyParams {
        self.technology
    }

    /// Published (or interpolated) energy per SOP at full activity, in pJ.
    #[must_use]
    pub fn energy_per_sop_pj(&self, config: &SneConfig) -> f64 {
        if let Some(&(_, e)) = ENERGY_PER_SOP_PJ
            .iter()
            .find(|(s, _)| *s == config.num_slices)
        {
            return e;
        }
        // Fixed-plus-amortized model: E(s) = E_inf + K / s, fitted on the
        // 1- and 8-slice points.
        let (s1, e1) = (1.0, ENERGY_PER_SOP_PJ[0].1);
        let (s8, e8) = (8.0, ENERGY_PER_SOP_PJ[3].1);
        let k = (e1 - e8) / (1.0 / s1 - 1.0 / s8);
        let e_inf = e8 - k / s8;
        e_inf + k / config.num_slices as f64
    }

    /// Peak dynamic power in mW at full update activity (every cluster
    /// performing one state update per cycle).
    #[must_use]
    pub fn peak_dynamic_mw(&self, config: &SneConfig) -> f64 {
        // pJ/SOP × GSOP/s = mW.
        self.energy_per_sop_pj(config) * config.peak_gsops() - self.leakage_mw(config)
    }

    /// Leakage power in mW (scales with the synthesized area).
    #[must_use]
    pub fn leakage_mw(&self, config: &SneConfig) -> f64 {
        self.technology.leakage_mw(self.area.total_kge(config))
    }

    /// Total power at full update activity, in mW. For the 8-slice instance
    /// this is the 11.29 mW of Table II.
    #[must_use]
    pub fn peak_total_mw(&self, config: &SneConfig) -> f64 {
        self.energy_per_sop_pj(config) * config.peak_gsops()
    }

    /// Power breakdown at a given cluster activity (fraction of
    /// cluster-cycles that perform a state update, in `[0, 1]`).
    ///
    /// Clock-gated clusters draw no dynamic power; the shared infrastructure
    /// keeps toggling as long as the engine is processing events.
    #[must_use]
    pub fn breakdown_at_activity(&self, config: &SneConfig, activity: f64) -> PowerBreakdown {
        let activity = activity.clamp(0.0, 1.0);
        let dynamic_full = self.peak_dynamic_mw(config).max(0.0);
        let infrastructure = dynamic_full * self.infrastructure_fraction;
        let clusters_full = dynamic_full - infrastructure;
        PowerBreakdown {
            dynamic_clusters: clusters_full * activity,
            dynamic_infrastructure: infrastructure,
            leakage: self.leakage_mw(config),
        }
    }

    /// Power breakdown for a measured run: the cluster activity is taken from
    /// the simulator's activity counters.
    #[must_use]
    pub fn breakdown_for_run(&self, config: &SneConfig, stats: &CycleStats) -> PowerBreakdown {
        self.breakdown_at_activity(config, stats.cluster_utilization())
    }

    /// Average power of a run in mW.
    #[must_use]
    pub fn average_power_mw(&self, config: &SneConfig, stats: &CycleStats) -> f64 {
        self.breakdown_for_run(config, stats).total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_slice_peak_power_matches_table_ii() {
        let model = PowerModel::default();
        let power = model.peak_total_mw(&SneConfig::with_slices(8));
        assert!(
            (power - 11.29).abs() < 0.05,
            "8-slice power {power} should be ~11.29 mW"
        );
    }

    #[test]
    fn power_scales_with_slices_like_fig5a() {
        let model = PowerModel::default();
        let powers: Vec<f64> = [1, 2, 4, 8]
            .iter()
            .map(|&s| model.peak_total_mw(&SneConfig::with_slices(s)))
            .collect();
        // Monotonically increasing, roughly ×2 per doubling.
        assert!(powers.windows(2).all(|w| w[1] > w[0]));
        assert!((powers[3] / powers[2] - 2.0).abs() < 0.2);
        assert!(powers[0] > 1.0 && powers[0] < 2.5);
    }

    #[test]
    fn dynamic_power_dominates_leakage() {
        let model = PowerModel::default();
        for slices in [1, 2, 4, 8] {
            let config = SneConfig::with_slices(slices);
            let breakdown = model.breakdown_at_activity(&config, 1.0);
            assert!(breakdown.dynamic() > 5.0 * breakdown.leakage);
        }
    }

    #[test]
    fn energy_per_sop_decreases_with_slices() {
        let model = PowerModel::default();
        let e1 = model.energy_per_sop_pj(&SneConfig::with_slices(1));
        let e8 = model.energy_per_sop_pj(&SneConfig::with_slices(8));
        assert!(e1 > e8);
        assert!((e8 - 0.221).abs() < 1e-9);
        // Interpolation stays between the calibration extremes.
        let e3 = model.energy_per_sop_pj(&SneConfig::with_slices(3));
        assert!(e3 < e1 && e3 > e8);
    }

    #[test]
    fn gated_clusters_save_power() {
        let model = PowerModel::default();
        let config = SneConfig::with_slices(8);
        let idle = model.breakdown_at_activity(&config, 0.1);
        let busy = model.breakdown_at_activity(&config, 1.0);
        assert!(idle.total() < busy.total());
        assert!(idle.total() > 0.0);
        // Out-of-range activity is clamped.
        let clamped = model.breakdown_at_activity(&config, 2.0);
        assert!((clamped.total() - busy.total()).abs() < 1e-12);
    }

    #[test]
    fn run_power_uses_measured_utilization() {
        let model = PowerModel::default();
        let config = SneConfig::with_slices(8);
        let stats = CycleStats {
            active_cluster_cycles: 50,
            gated_cluster_cycles: 50,
            ..CycleStats::default()
        };
        let expected = model.breakdown_at_activity(&config, 0.5).total();
        assert!((model.average_power_mw(&config, &stats) - expected).abs() < 1e-12);
    }
}

//! State-of-the-art comparison (Table II of the paper).
//!
//! Table II compares the SNE against published neuromorphic platforms. The
//! rows for the other platforms are literature values reproduced verbatim;
//! the SNE row is generated from this crate's own models so that it tracks
//! whatever configuration is being evaluated.

use serde::{Deserialize, Serialize};
use sne_sim::SneConfig;

use crate::area::AreaModel;
use crate::energy::EnergyModel;
use crate::power::PowerModel;

/// One row of the comparison table. Fields that a publication does not
/// report are `None` and printed as "-".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformRecord {
    /// Platform name.
    pub name: String,
    /// Implementation style ("Digital", "Analog", …).
    pub implementation: String,
    /// Technology node label (e.g. "22nm").
    pub technology: String,
    /// Neuron model.
    pub neuron_model: String,
    /// Learning support.
    pub learning: String,
    /// Network type accelerated.
    pub network_type: String,
    /// Number of neurons.
    pub neurons: Option<u64>,
    /// Area per neuron in µm².
    pub neuron_area_um2: Option<f64>,
    /// Peak performance in GOP/s (synaptic operations).
    pub performance_gops: Option<f64>,
    /// Energy efficiency in TOP/s/W.
    pub efficiency_tops_w: Option<f64>,
    /// Energy per synaptic operation in pJ.
    pub energy_per_sop_pj: Option<f64>,
    /// Clock frequency in MHz (`None` for asynchronous designs).
    pub frequency_mhz: Option<f64>,
    /// Power in mW.
    pub power_mw: Option<f64>,
    /// Weight precision in bits (as reported).
    pub bits: Option<String>,
    /// Supply voltage in volts.
    pub voltage: Option<f64>,
}

impl PlatformRecord {
    /// Returns `true` if this record describes the SNE itself.
    #[must_use]
    pub fn is_sne(&self) -> bool {
        self.name.starts_with("SNE")
    }
}

/// Literature rows of Table II (everything except the SNE row).
#[must_use]
pub fn literature_records() -> Vec<PlatformRecord> {
    vec![
        PlatformRecord {
            name: "Tianjic".to_owned(),
            implementation: "Digital".to_owned(),
            technology: "28nm".to_owned(),
            neuron_model: "-".to_owned(),
            learning: "-".to_owned(),
            network_type: "Hybrid".to_owned(),
            neurons: Some(40_000),
            neuron_area_um2: Some(361.0),
            performance_gops: Some(649.0),
            efficiency_tops_w: Some(1.28),
            energy_per_sop_pj: Some(6.18),
            frequency_mhz: Some(300.0),
            power_mw: Some(950.0),
            bits: Some("8".to_owned()),
            voltage: Some(0.9),
        },
        PlatformRecord {
            name: "Dynapsel".to_owned(),
            implementation: "Analog".to_owned(),
            technology: "28nm".to_owned(),
            neuron_model: "-".to_owned(),
            learning: "online STDP".to_owned(),
            network_type: "-".to_owned(),
            neurons: Some(256),
            neuron_area_um2: Some(150_390.0),
            performance_gops: None,
            efficiency_tops_w: Some(0.6),
            energy_per_sop_pj: Some(2.0),
            frequency_mhz: None,
            power_mw: None,
            bits: Some("4".to_owned()),
            voltage: Some(1.0),
        },
        PlatformRecord {
            name: "ODIN".to_owned(),
            implementation: "Digital".to_owned(),
            technology: "28nm".to_owned(),
            neuron_model: "Bio Plaus.".to_owned(),
            learning: "-".to_owned(),
            network_type: "-".to_owned(),
            neurons: Some(256),
            neuron_area_um2: Some(335.9),
            performance_gops: Some(0.038),
            efficiency_tops_w: Some(0.079),
            energy_per_sop_pj: Some(12.7),
            frequency_mhz: Some(75.0),
            power_mw: Some(0.477),
            bits: None,
            voltage: Some(0.55),
        },
        PlatformRecord {
            name: "TrueNorth".to_owned(),
            implementation: "Digital".to_owned(),
            technology: "28nm".to_owned(),
            neuron_model: "EXP LIF".to_owned(),
            learning: "online".to_owned(),
            network_type: "SNN".to_owned(),
            neurons: Some(1_000_000),
            neuron_area_um2: Some(389.0),
            performance_gops: Some(58.0),
            efficiency_tops_w: Some(0.046),
            energy_per_sop_pj: Some(27.0),
            frequency_mhz: None,
            power_mw: Some(65.0),
            bits: Some("1".to_owned()),
            voltage: Some(0.75),
        },
        PlatformRecord {
            name: "SPOON".to_owned(),
            implementation: "Digital".to_owned(),
            technology: "28nm".to_owned(),
            neuron_model: "-".to_owned(),
            learning: "DRTP".to_owned(),
            network_type: "Conv SNN".to_owned(),
            neurons: None,
            neuron_area_um2: None,
            performance_gops: None,
            efficiency_tops_w: None,
            energy_per_sop_pj: Some(6.8),
            frequency_mhz: Some(150.0),
            power_mw: None,
            bits: Some("8".to_owned()),
            voltage: Some(0.6),
        },
        PlatformRecord {
            name: "Loihi".to_owned(),
            implementation: "Digital".to_owned(),
            technology: "14nm".to_owned(),
            neuron_model: "LIF+".to_owned(),
            learning: "online STDP".to_owned(),
            network_type: "SNN".to_owned(),
            neurons: Some(131_072),
            neuron_area_um2: Some(396.7),
            performance_gops: None,
            efficiency_tops_w: None,
            energy_per_sop_pj: Some(23.0),
            frequency_mhz: None,
            power_mw: None,
            bits: Some("1-64".to_owned()),
            voltage: None,
        },
        PlatformRecord {
            name: "SpiNNaker 2".to_owned(),
            implementation: "Digital".to_owned(),
            technology: "22nm".to_owned(),
            neuron_model: "Prog.".to_owned(),
            learning: "-".to_owned(),
            network_type: "DNN/SNN".to_owned(),
            neurons: None,
            neuron_area_um2: None,
            performance_gops: None,
            efficiency_tops_w: Some(3.26),
            energy_per_sop_pj: Some(1_700.0),
            frequency_mhz: Some(200.0),
            power_mw: None,
            bits: Some("var.".to_owned()),
            voltage: Some(0.5),
        },
    ]
}

/// Builds the SNE row of Table II from the calibrated models.
#[must_use]
pub fn sne_record(config: &SneConfig) -> PlatformRecord {
    let area = AreaModel::default();
    let power = PowerModel::default();
    let energy = EnergyModel::new();
    PlatformRecord {
        name: format!("SNE ({} slices)", config.num_slices),
        implementation: "Digital".to_owned(),
        technology: "22nm".to_owned(),
        neuron_model: "LIF".to_owned(),
        learning: "offline".to_owned(),
        network_type: "Conv SNN".to_owned(),
        neurons: Some(config.total_neurons() as u64),
        neuron_area_um2: Some(area.neuron_area_um2(config)),
        performance_gops: Some(config.peak_gsops()),
        efficiency_tops_w: Some(energy.nominal_efficiency_tsops_w(config)),
        energy_per_sop_pj: Some(energy.nominal_energy_per_sop_pj(config)),
        frequency_mhz: Some(config.clock_mhz),
        power_mw: Some(power.peak_total_mw(config)),
        bits: Some(format!("{}", config.weight_bits)),
        voltage: Some(0.8),
    }
}

/// The full Table II: the SNE row followed by the literature rows.
#[must_use]
pub fn comparison_table(config: &SneConfig) -> Vec<PlatformRecord> {
    let mut rows = vec![sne_record(config)];
    rows.extend(literature_records());
    rows
}

/// Improvement factor of the SNE's efficiency over a named platform of the
/// table. The paper quotes 3.55× over Tianjic (Pei et al.), the hybrid
/// digital platform it compares against in §IV-C.
#[must_use]
pub fn efficiency_improvement_over(config: &SneConfig, platform: &str) -> Option<f64> {
    let sne = sne_record(config).efficiency_tops_w?;
    literature_records()
        .iter()
        .find(|r| r.name == platform)
        .and_then(|r| r.efficiency_tops_w)
        .map(|other| sne / other)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_contains_sne_plus_seven_platforms() {
        let table = comparison_table(&SneConfig::with_slices(8));
        assert_eq!(table.len(), 8);
        assert!(table[0].is_sne());
        assert!(!table[1].is_sne());
    }

    #[test]
    fn sne_row_matches_the_paper_headline() {
        let row = sne_record(&SneConfig::with_slices(8));
        assert_eq!(row.neurons, Some(8192));
        assert!((row.performance_gops.unwrap() - 51.2).abs() < 1e-9);
        assert!((row.energy_per_sop_pj.unwrap() - 0.221).abs() < 1e-9);
        assert!((row.power_mw.unwrap() - 11.29).abs() < 0.05);
        assert!((row.neuron_area_um2.unwrap() - 19.9).abs() < 0.5);
    }

    #[test]
    fn sne_has_the_lowest_energy_per_sop() {
        let table = comparison_table(&SneConfig::with_slices(8));
        let sne = table[0].energy_per_sop_pj.unwrap();
        for row in &table[1..] {
            if let Some(e) = row.energy_per_sop_pj {
                assert!(sne < e, "SNE ({sne} pJ) should beat {} ({e} pJ)", row.name);
            }
        }
    }

    #[test]
    fn efficiency_improvement_is_about_3_55x() {
        let improvement =
            efficiency_improvement_over(&SneConfig::with_slices(8), "Tianjic").unwrap();
        assert!(
            (improvement - 3.55).abs() < 0.05,
            "improvement over Tianjic should be ~3.55x, got {improvement}"
        );
        assert!(efficiency_improvement_over(&SneConfig::with_slices(8), "Unknown").is_none());
    }

    #[test]
    fn literature_records_have_plausible_values() {
        for row in literature_records() {
            if let Some(e) = row.energy_per_sop_pj {
                assert!(e > 0.0);
            }
            if let Some(n) = row.neurons {
                assert!(n > 0);
            }
        }
    }
}

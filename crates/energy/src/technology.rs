//! GF22FDX technology constants.
//!
//! The paper synthesizes the SNE with Synopsys Design Compiler in
//! GlobalFoundries 22 nm FDX (8T cells, SSG corner, 0.72 V, −40 °C, 400 MHz)
//! and estimates power with PrimePower at the TT corner, 0.8 V, 25 °C. The
//! constants here capture that operating point plus the conversion factors
//! needed to express gate-equivalent areas in µm² and mm².

use serde::{Deserialize, Serialize};

/// Technology and operating-point parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TechnologyParams {
    /// Technology node label.
    pub node_nm: u32,
    /// Area of one gate equivalent (an ND2X1 NAND2 of the 8T library) in µm².
    pub gate_area_um2: f64,
    /// Synthesis corner supply voltage (SSG, −40 °C) in volts.
    pub synthesis_voltage: f64,
    /// Power-analysis corner supply voltage (TT, 25 °C) in volts.
    pub nominal_voltage: f64,
    /// Target clock frequency in MHz.
    pub clock_mhz: f64,
    /// Leakage power density in µW per kGE at the nominal corner.
    ///
    /// Chosen so that the 8-slice instance leaks a few percent of its total
    /// power, matching the "dynamic power significantly dominates" statement
    /// of §IV-A.2.
    pub leakage_uw_per_kge: f64,
}

impl Default for TechnologyParams {
    fn default() -> Self {
        Self {
            node_nm: 22,
            gate_area_um2: 0.196,
            synthesis_voltage: 0.72,
            nominal_voltage: 0.8,
            clock_mhz: 400.0,
            leakage_uw_per_kge: 0.20,
        }
    }
}

impl TechnologyParams {
    /// Converts an area in kGE to µm².
    #[must_use]
    pub fn kge_to_um2(&self, kge: f64) -> f64 {
        kge * 1_000.0 * self.gate_area_um2
    }

    /// Converts an area in kGE to mm².
    #[must_use]
    pub fn kge_to_mm2(&self, kge: f64) -> f64 {
        self.kge_to_um2(kge) / 1e6
    }

    /// Leakage power in mW for a block of the given size in kGE.
    #[must_use]
    pub fn leakage_mw(&self, kge: f64) -> f64 {
        kge * self.leakage_uw_per_kge / 1_000.0
    }

    /// Clock period in nanoseconds.
    #[must_use]
    pub fn clock_period_ns(&self) -> f64 {
        1_000.0 / self.clock_mhz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper_operating_point() {
        let t = TechnologyParams::default();
        assert_eq!(t.node_nm, 22);
        assert_eq!(t.synthesis_voltage, 0.72);
        assert_eq!(t.nominal_voltage, 0.8);
        assert_eq!(t.clock_mhz, 400.0);
        assert!((t.clock_period_ns() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn area_conversions_are_consistent() {
        let t = TechnologyParams::default();
        assert!((t.kge_to_um2(1.0) - 196.0).abs() < 1e-9);
        assert!((t.kge_to_mm2(1_000.0) - 0.196).abs() < 1e-9);
    }

    #[test]
    fn leakage_scales_with_area() {
        let t = TechnologyParams::default();
        assert!(t.leakage_mw(100.0) > 0.0);
        assert!((t.leakage_mw(200.0) / t.leakage_mw(100.0) - 2.0).abs() < 1e-9);
    }
}

//! Design-space exploration over the architectural parameters.
//!
//! The paper evaluates one family of configurations (16 clusters × 64 TDM
//! neurons, 1–8 slices). This module sweeps the architectural knobs exposed
//! by [`SneConfig`] with the calibrated area/power/performance models and
//! ranks the candidates by energy efficiency and area efficiency — the
//! "configurable engine" exploration the paper's conclusion motivates.

use serde::{Deserialize, Serialize};
use sne_sim::SneConfig;

use crate::area::AreaModel;
use crate::energy::EnergyModel;
use crate::power::PowerModel;

/// One evaluated design point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Number of slices.
    pub slices: usize,
    /// Clusters per slice.
    pub clusters_per_slice: usize,
    /// TDM neurons per cluster.
    pub neurons_per_cluster: usize,
    /// Total neurons of the instance.
    pub neurons: usize,
    /// Total area in kGE.
    pub area_kge: f64,
    /// Peak power at full activity in mW.
    pub power_mw: f64,
    /// Peak performance in GSOP/s.
    pub gsops: f64,
    /// Energy per synaptic operation in pJ.
    pub energy_per_sop_pj: f64,
    /// Energy efficiency in TSOP/s/W.
    pub efficiency_tsops_w: f64,
    /// Area efficiency in GSOP/s per mm².
    pub gsops_per_mm2: f64,
}

impl DesignPoint {
    /// Evaluates one configuration with the calibrated models.
    #[must_use]
    pub fn evaluate(config: &SneConfig) -> Self {
        let area = AreaModel::default();
        let power = PowerModel::default();
        let energy = EnergyModel::new();
        let area_kge = area.total_kge(config);
        let mm2 = area.total_mm2(config);
        let gsops = config.peak_gsops();
        Self {
            slices: config.num_slices,
            clusters_per_slice: config.clusters_per_slice,
            neurons_per_cluster: config.neurons_per_cluster,
            neurons: config.total_neurons(),
            area_kge,
            power_mw: power.peak_total_mw(config),
            gsops,
            energy_per_sop_pj: energy.nominal_energy_per_sop_pj(config),
            efficiency_tsops_w: energy.nominal_efficiency_tsops_w(config),
            gsops_per_mm2: if mm2 > 0.0 { gsops / mm2 } else { 0.0 },
        }
    }
}

/// The swept parameter ranges.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepSpace {
    /// Slice counts to explore.
    pub slices: Vec<usize>,
    /// Clusters-per-slice values to explore.
    pub clusters_per_slice: Vec<usize>,
    /// Neurons-per-cluster values to explore.
    pub neurons_per_cluster: Vec<usize>,
}

impl Default for SweepSpace {
    fn default() -> Self {
        Self {
            slices: vec![1, 2, 4, 8, 16],
            clusters_per_slice: vec![8, 16, 32],
            neurons_per_cluster: vec![32, 64, 128],
        }
    }
}

impl SweepSpace {
    /// Evaluates every point of the sweep.
    #[must_use]
    pub fn evaluate(&self) -> Vec<DesignPoint> {
        let mut points = Vec::new();
        for &slices in &self.slices {
            for &clusters in &self.clusters_per_slice {
                for &neurons in &self.neurons_per_cluster {
                    let config = SneConfig {
                        num_slices: slices,
                        clusters_per_slice: clusters,
                        neurons_per_cluster: neurons,
                        ..SneConfig::default()
                    };
                    if config.validate().is_ok() {
                        points.push(DesignPoint::evaluate(&config));
                    }
                }
            }
        }
        points
    }

    /// Evaluates the sweep and returns the Pareto-optimal points under
    /// (maximize GSOP/s, minimize area): a point survives if no other point
    /// has both more throughput and less area.
    #[must_use]
    pub fn pareto_front(&self) -> Vec<DesignPoint> {
        let points = self.evaluate();
        points
            .iter()
            .filter(|candidate| {
                !points.iter().any(|other| {
                    other.gsops > candidate.gsops && other.area_kge < candidate.area_kge
                })
            })
            .copied()
            .collect()
    }
}

/// Formats a design point as one report row.
#[must_use]
pub fn format_design_point(point: &DesignPoint) -> String {
    format!(
        "{:>2} sl x {:>2} cl x {:>3} n = {:>6} neurons | {:>8.1} kGE | {:>6.2} mW | {:>6.1} GSOP/s | {:.3} pJ/SOP | {:>6.1} GSOP/s/mm2",
        point.slices,
        point.clusters_per_slice,
        point.neurons_per_cluster,
        point.neurons,
        point.area_kge,
        point.power_mw,
        point.gsops,
        point.energy_per_sop_pj,
        point.gsops_per_mm2
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_point_is_reproduced_by_the_dse() {
        let point = DesignPoint::evaluate(&SneConfig::with_slices(8));
        assert_eq!(point.neurons, 8192);
        assert!((point.gsops - 51.2).abs() < 1e-9);
        assert!((point.energy_per_sop_pj - 0.221).abs() < 1e-9);
        assert!((point.power_mw - 11.32).abs() < 0.1);
    }

    #[test]
    fn sweep_covers_the_full_space() {
        let space = SweepSpace::default();
        let points = space.evaluate();
        assert_eq!(points.len(), 5 * 3 * 3);
        assert!(points.iter().all(|p| p.area_kge > 0.0 && p.gsops > 0.0));
    }

    #[test]
    fn pareto_front_is_a_subset_and_nondominated() {
        let space = SweepSpace::default();
        let all = space.evaluate();
        let front = space.pareto_front();
        assert!(!front.is_empty());
        assert!(front.len() <= all.len());
        for candidate in &front {
            assert!(!all
                .iter()
                .any(|o| o.gsops > candidate.gsops && o.area_kge < candidate.area_kge));
        }
    }

    #[test]
    fn more_clusters_increase_throughput_and_area() {
        let small = DesignPoint::evaluate(&SneConfig {
            clusters_per_slice: 8,
            ..SneConfig::with_slices(4)
        });
        let big = DesignPoint::evaluate(&SneConfig {
            clusters_per_slice: 32,
            ..SneConfig::with_slices(4)
        });
        assert!(big.gsops > small.gsops);
        assert!(big.area_kge > small.area_kge);
    }

    #[test]
    fn format_mentions_the_key_metrics() {
        let row = format_design_point(&DesignPoint::evaluate(&SneConfig::with_slices(2)));
        assert!(row.contains("kGE"));
        assert!(row.contains("GSOP/s"));
        assert!(row.contains("pJ/SOP"));
    }
}

//! GF22FDX technology models calibrated on the SNE paper.
//!
//! The paper's evaluation (§IV) reports post-synthesis area, power and energy
//! numbers for the SNE in GlobalFoundries 22 nm FDX. This crate reproduces
//! those quantities with analytic models calibrated on the published data
//! points, so that the figures and tables can be regenerated for arbitrary
//! engine configurations and workloads:
//!
//! * [`area`] — the kGE area breakdown of Fig. 4 (memory, clusters,
//!   streamers, interconnect, registers, control, FIFOs, filters).
//! * [`power`] — the dynamic + leakage power of Fig. 5a.
//! * [`performance`] — the GSOP/s scaling of Fig. 5b.
//! * [`energy`] — energy per synaptic operation, energy per inference and
//!   efficiency (TSOP/s/W), combining the power model with the cycle counts
//!   produced by `sne-sim`.
//! * [`voltage`] — the 0.8 V → 0.9 V extrapolation quoted in §IV-C.
//! * [`comparison`] — the state-of-the-art comparison of Table II.
//! * [`technology`] — the underlying GF22FDX constants.
//!
//! # Example
//!
//! ```
//! use sne_energy::area::AreaModel;
//! use sne_sim::SneConfig;
//!
//! let breakdown = AreaModel::default().breakdown(&SneConfig::with_slices(8));
//! // The 8-slice instance is dominated by the neuron state memory.
//! assert!(breakdown.memory > breakdown.clusters);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod area;
pub mod comparison;
pub mod dse;
pub mod energy;
pub mod performance;
pub mod power;
pub mod report;
pub mod technology;
pub mod voltage;

pub use area::{AreaBreakdown, AreaModel};
pub use energy::{EnergyModel, EnergyReport};
pub use performance::PerformanceModel;
pub use power::{PowerBreakdown, PowerModel};
pub use technology::TechnologyParams;

//! Offline stand-in for the `rand` crate, 0.8 API subset
//! (see `vendor/README.md`).
//!
//! Implements exactly the surface this repository uses: the [`Rng`] extension
//! methods `gen`, `gen_range` and `gen_bool`, [`SeedableRng::seed_from_u64`],
//! and [`rngs::StdRng`]. The generator is xoshiro256++ seeded via SplitMix64 —
//! a different stream from the real `StdRng` (ChaCha12), which is acceptable
//! because the repository's tests rely on determinism for a fixed seed, never
//! on specific drawn values.

pub mod rngs;

/// A source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit word (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable uniformly over their natural domain, standing in for
/// rand's `Standard` distribution.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),* $(,)?) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Range types a value can be drawn from, standing in for rand's
/// `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
    )*};
}
int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
float_range!(f32, f64);

/// Extension methods over any [`RngCore`], matching the rand 0.8 `Rng` API.
pub trait Rng: RngCore {
    /// Draws a value uniformly over the type's natural domain
    /// (`[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as StandardSample>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-2i8..=4);
            assert!((-2..=4).contains(&v));
            let u = rng.gen_range(0u32..17);
            assert!(u < 17);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_floats_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }
}

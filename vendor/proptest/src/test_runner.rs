//! Deterministic case generation and failure reporting.

use std::fmt;

/// How many cases each property samples. Reads `PROPTEST_CASES` once per
/// test; defaults to 64.
pub fn case_count() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// SplitMix64 generator seeded from the property's name, so each property
/// replays the same cases on every run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    /// Returns the next 64-bit word of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        (self.next_u64() % bound as u64) as usize
    }
}

//! `Option` strategies (`prop::option`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Some(value)` with probability `probability` and
/// `None` otherwise.
pub fn weighted<S: Strategy>(probability: f64, inner: S) -> WeightedOption<S> {
    assert!(
        (0.0..=1.0).contains(&probability),
        "probability must be in [0, 1]"
    );
    WeightedOption { probability, inner }
}

/// See [`weighted`].
#[derive(Debug, Clone)]
pub struct WeightedOption<S> {
    probability: f64,
    inner: S,
}

impl<S: Strategy> Strategy for WeightedOption<S> {
    type Value = Option<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.unit_f64() < self.probability {
            Some(self.inner.sample(rng))
        } else {
            None
        }
    }
}

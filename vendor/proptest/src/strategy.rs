//! The [`Strategy`] trait and its implementations for ranges, tuples,
//! constants and unions.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

/// Boxes a strategy, erasing its concrete type (used by `prop_oneof!`).
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

/// Strategy producing a constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy drawing uniformly from one of several boxed strategies.
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Wraps a non-empty list of alternatives.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { options }
    }
}

impl<V> std::fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union")
            .field("options", &self.options.len())
            .finish()
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let index = rng.below(self.options.len());
        self.options[index].sample(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
    )*};
}
int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),* $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy!(
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F)
);

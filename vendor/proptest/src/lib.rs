//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Implements the subset the repository's property tests use: the
//! [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and [`prop_oneof!`]
//! macros, the [`strategy::Strategy`] trait for ranges, tuples and
//! [`strategy::Just`], plus [`collection::vec()`] and [`option::weighted`].
//!
//! Properties are genuinely exercised: each `#[test]` samples a fixed number
//! of random cases (64 by default; the `PROPTEST_CASES` environment variable
//! overrides) from its strategies with a seed derived from the test name, so
//! failures are reproducible run over run. Unlike real proptest there is no
//! shrinking — a failing case is reported as drawn.

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// The glob-importable prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Mirror of the `proptest::prelude::prop` module alias.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Expands each `fn name(arg in strategy, ...) { body }` item into a unit
/// test that samples the strategies for a fixed number of cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::case_count();
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(error) = outcome {
                        panic!(
                            "property `{}` failed on case {case}/{cases}: {error}",
                            stringify!($name),
                        );
                    }
                }
            }
        )+
    };
}

/// `assert!` that fails the current property case instead of panicking
/// directly, mirroring proptest's macro of the same name.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        match $cond {
            true => {}
            false => {
                return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                    ::std::concat!("assertion failed: ", ::std::stringify!($cond)),
                ));
            }
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        match $cond {
            true => {}
            false => {
                return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                    ::std::format!($($fmt)*),
                ));
            }
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left != right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{:?}` != `{:?}` ({} != {})",
                    left,
                    right,
                    ::std::stringify!($left),
                    ::std::stringify!($right),
                ),
            ));
        }
    }};
}

/// Builds a strategy drawing uniformly from one of the listed strategies,
/// all of which must produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0u32..10, y in -4i8..=4, f in 0.0f32..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-4..=4).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_respects_size_range(v in prop::collection::vec(0u8..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn oneof_and_option_cover_variants(
            pick in prop_oneof![Just(1u8), Just(2u8), Just(3u8)],
            maybe in prop::option::weighted(0.5, 0u16..4),
        ) {
            prop_assert!((1..=3).contains(&pick));
            if let Some(value) = maybe {
                prop_assert!(value < 4);
            }
        }

        #[test]
        fn tuples_sample_componentwise(t in (0u32..3, 10i32..13, 0.0f64..1.0)) {
            prop_assert!(t.0 < 3);
            prop_assert_eq!(t.1 / 10, 1);
            prop_assert!(t.2 < 1.0);
        }
    }

    #[test]
    fn same_name_reproduces_the_same_cases() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        for _ in 0..50 {
            assert_eq!((0u64..1000).sample(&mut a), (0u64..1000).sample(&mut b));
        }
    }
}

//! Offline stand-in for `criterion` 0.5 (see `vendor/README.md`).
//!
//! Implements the subset the repository's benches use — benchmark groups,
//! `Bencher::iter`, `black_box`, `BenchmarkId` and the `criterion_group!` /
//! `criterion_main!` macros — with real wall-clock measurement. Each
//! benchmark prints one line:
//!
//! ```text
//! group/id: 123.4 µs/iter (20 samples)
//! ```
//!
//! instead of criterion's full statistical report. No warm-up, outlier
//! rejection or HTML output.

use std::time::{Duration, Instant};

/// Re-export point for the benchmark entry state.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// Prevents the optimizer from eliding a value computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a parameter value, mirroring criterion's
    /// `BenchmarkId::from_parameter`.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// Builds an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_owned() }
    }
}

/// A named group of related benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark in the group records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        bencher.report(&self.name, &id.id);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher, input);
        bencher.report(&self.name, &id.id);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Timer handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over the group's sample count.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.iters == 0 {
            println!("{group}/{id}: no samples recorded");
            return;
        }
        let mean = self.total / u32::try_from(self.iters).unwrap_or(u32::MAX);
        println!("{group}/{id}: {mean:?}/iter ({} samples)", self.iters);
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the `main` entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

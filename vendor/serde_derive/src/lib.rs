//! No-op stand-in for `serde_derive` (offline build, see `vendor/README.md`).
//!
//! The derive macros accept the same input as the real ones (including
//! `#[serde(...)]` helper attributes) and expand to nothing: no code in this
//! repository serializes values yet, so no trait impls are required — the
//! derives only need to be *nameable* for the annotated types to compile.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

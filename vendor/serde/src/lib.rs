//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! Exposes the `Serialize`/`Deserialize` trait *names* and the matching
//! derive macros so `#[derive(serde::Serialize, serde::Deserialize)]`
//! annotations compile. The traits are empty: nothing in this repository
//! performs serialization yet, so no methods are needed.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

//! Workspace-level facade of the SNE reproduction.
//!
//! This crate exists to host the repository-level integration tests
//! (`tests/`) and runnable examples (`examples/`); it simply re-exports the
//! member crates so the examples read naturally:
//!
//! * [`sne`] — top-level accelerator API (compile, run, report),
//! * [`sne_event`] — events, streams and synthetic datasets,
//! * [`sne_model`] — functional eCNN reference model and trainer,
//! * [`sne_sim`] — cycle-approximate hardware simulator,
//! * [`sne_energy`] — calibrated GF22FDX area/power/energy models,
//! * [`sne_serve`] — the HTTP serving front-end (model registry, streaming
//!   sessions, stats).
//!
//! # Example
//!
//! ```
//! use sne_repro::prelude::*;
//! # use rand::SeedableRng;
//!
//! # fn main() -> Result<(), SneError> {
//! let topology = Topology::tiny(Shape::new(2, 8, 8), 4, 2);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let network = CompiledNetwork::random(&topology, &mut rng)?;
//! let mut accelerator = SneAccelerator::new(SneConfig::with_slices(2));
//! let stream = sne::proportionality::stream_with_activity((2, 8, 8), 16, 0.05, 3);
//! let result = accelerator.run(&network, &stream)?;
//! assert!(result.energy.energy_uj > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use sne;
pub use sne_energy;
pub use sne_event;
pub use sne_model;
pub use sne_serve;
pub use sne_sim;

/// Commonly used types, re-exported for examples and tests.
pub mod prelude {
    pub use sne::artifact::{ClientState, RuntimeArtifact};
    pub use sne::batch::{BatchReport, BatchRunner, EnginePool, LatencySummary, Scheduler};
    pub use sne::compile::CompiledNetwork;
    pub use sne::proportionality;
    pub use sne::session::{ChunkOutput, InferenceSession, PipelinedSession};
    pub use sne::{InferenceResult, SneAccelerator, SneError};
    pub use sne_energy::{AreaModel, EnergyModel, PerformanceModel, PowerModel};
    pub use sne_event::datasets::{EventDataset, GestureDataset, NmnistDataset};
    pub use sne_event::{Event, EventOp, EventStream};
    pub use sne_model::topology::Topology;
    pub use sne_model::train::{train, TrainConfig};
    pub use sne_model::Shape;
    pub use sne_serve::ServerBuilder;
    pub use sne_sim::{Engine, LayerMapping, SneConfig};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_reexports_compile() {
        use crate::prelude::*;
        let config = SneConfig::with_slices(8);
        assert_eq!(config.total_neurons(), 8192);
    }
}

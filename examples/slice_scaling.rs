//! Slice-count scaling study (the Fig. 4 / Fig. 5 sweep, programmatically):
//! area, peak power, peak performance and a measured workload for 1, 2, 4
//! and 8 slices.
//!
//! ```bash
//! cargo run --release --example slice_scaling
//! ```

use rand::SeedableRng;
use sne_repro::prelude::*;

fn main() -> Result<(), SneError> {
    let area = AreaModel::default();
    let power = PowerModel::default();
    let performance = PerformanceModel::new();
    let energy = EnergyModel::new();

    let topology = Topology::tiny(Shape::new(2, 16, 16), 8, 11);
    let mut rng = rand::rngs::StdRng::seed_from_u64(21);
    let network = CompiledNetwork::random(&topology, &mut rng)?;
    let stream = proportionality::stream_with_activity((2, 16, 16), 64, 0.03, 4);

    println!(
        "{:>7} | {:>10} | {:>9} | {:>11} | {:>12} | {:>11} | {:>10}",
        "slices", "area[kGE]", "power[mW]", "peak GSOP/s", "pJ/SOP (nom)", "time[ms]", "energy[uJ]"
    );
    for slices in [1usize, 2, 4, 8] {
        let config = SneConfig::with_slices(slices);
        let mut accelerator = SneAccelerator::new(config);
        let result = accelerator.run(&network, &stream)?;
        println!(
            "{:>7} | {:>10.1} | {:>9.2} | {:>11.1} | {:>12.3} | {:>11.3} | {:>10.2}",
            slices,
            area.total_kge(&config),
            power.peak_total_mw(&config),
            performance.peak_gsops(&config),
            energy.nominal_energy_per_sop_pj(&config),
            result.inference_time_ms,
            result.energy.energy_uj
        );
    }
    println!();
    println!("More slices finish the same workload in fewer passes (lower time) while");
    println!("the nominal energy per operation decreases slightly as the fixed streamer");
    println!("cost is amortized — the trends of Fig. 4 and Fig. 5.");
    Ok(())
}

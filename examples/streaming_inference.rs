//! Streaming inference: a continuous DVS-like feed consumed chunk by chunk
//! through one persistent [`InferenceSession`], the way the physical SNE is
//! used — configure the network once, then let events stream through while
//! neuron state persists between chunks.
//!
//! ```bash
//! cargo run --release --example streaming_inference
//! ```

use sne_repro::prelude::*;

fn main() -> Result<(), SneError> {
    // A synthetic DVS-Gesture-like feed: 48 timesteps of events, arriving as
    // a live stream rather than a stored sample.
    let dataset = GestureDataset::new(16, 48, 7);
    let sample = dataset.sample(3);
    let feed = &sample.stream;

    // Compile once: random 4-bit weights on a small eCNN (see the
    // dvs_gesture example for a trained network).
    let topology = Topology::tiny(Shape::new(2, 16, 16), 8, 11);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(42);
    let network = CompiledNetwork::random(&topology, &mut rng)?;

    // Open one persistent session; every chunk re-uses the engine and the
    // per-layer neuron state.
    let mut session = InferenceSession::new(network.clone(), SneConfig::with_slices(8))?;

    println!("streaming a {}-timestep DVS feed in 8-timestep chunks:", 48);
    println!();
    println!(
        "{:>7} {:>10} {:>11} {:>11} {:>9}",
        "window", "in events", "out events", "cycles", "leader"
    );
    for chunk in feed.chunks(8) {
        let out = session.push(&chunk)?;
        let running = session.summary();
        println!(
            "{:>3}..{:<3} {:>10} {:>11} {:>11} {:>9}",
            out.start_timestep,
            out.start_timestep + out.timesteps,
            chunk.spike_count(),
            out.output.spike_count(),
            out.stats.total_cycles,
            running.predicted_class
        );
    }

    let streamed = session.summary();
    println!();
    println!("final prediction        : {}", streamed.predicted_class);
    println!(
        "output spike counts     : {:?}",
        streamed.output_spike_counts
    );
    println!("total cycles            : {}", streamed.stats.total_cycles);
    println!(
        "energy over the window  : {:.2} uJ",
        streamed.energy.energy_uj
    );

    // Sanity check the streaming claim: chunked consumption is functionally
    // identical to one whole-sample inference.
    let whole = session.infer(feed)?;
    assert_eq!(whole.output_spike_counts, streamed.output_spike_counts);
    assert_eq!(whole.predicted_class, streamed.predicted_class);
    println!();
    println!("chunked == whole-stream inference: true (state persisted across chunks)");
    Ok(())
}

//! NMNIST-like pipeline with golden-model verification: every accelerator
//! inference is cross-checked against the functional (bit-exact) reference
//! model, demonstrating that the cycle simulator implements the quantized
//! LIF dynamics faithfully.
//!
//! ```bash
//! cargo run --release --example nmnist_pipeline
//! ```

use rand::SeedableRng;
use sne_repro::prelude::*;

fn main() -> Result<(), SneError> {
    // Synthetic NMNIST surrogate (34x34, 10 digits) and a small network with
    // random quantized weights.
    let dataset = NmnistDataset::new(48, 11);
    let topology = Topology::tiny(Shape::new(2, 34, 34), 4, 10);
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let network = CompiledNetwork::random(&topology, &mut rng)?;

    let mut accelerator = SneAccelerator::new(SneConfig::with_slices(4));
    let mut golden = network.golden_network()?;

    let mut checked = 0;
    let mut matching = 0;
    let mut total_energy = 0.0;
    for index in 0..10u64 {
        let sample = dataset.sample(index);
        let hardware = accelerator.run(&network, &sample.stream)?;
        let reference = golden.run_stream(&sample.stream)?;
        let golden_counts: Vec<u32> = reference.output_spike_counts.clone();
        checked += 1;
        if golden_counts == hardware.output_spike_counts {
            matching += 1;
        }
        total_energy += hardware.energy.energy_uj;
        println!(
            "digit {} | accelerator predicts {} ({} spikes) | golden model predicts {} | {}",
            sample.label,
            hardware.predicted_class,
            hardware.output_spike_counts.iter().sum::<u32>(),
            reference.predicted_class(),
            if golden_counts == hardware.output_spike_counts {
                "bit-exact"
            } else {
                "MISMATCH"
            }
        );
    }

    println!();
    println!("{matching}/{checked} inferences are bit-exact against the functional model");
    println!(
        "mean energy per inference: {:.2} uJ",
        total_energy / f64::from(checked)
    );
    Ok(())
}

//! Layer-by-layer execution report: runs the reduced Fig. 6 network and
//! shows how events, synaptic operations and cycles evolve through the
//! pipeline — the data a designer would use to decide between the
//! layer-per-slice and time-multiplexed mapping modes of §III-D.5.
//!
//! ```bash
//! cargo run --release --example layer_pipeline
//! ```

use rand::SeedableRng;
use sne_repro::prelude::*;

fn main() -> Result<(), SneError> {
    let topology = Topology::paper_fig6(Shape::new(2, 32, 32), 11);
    let mut rng = rand::rngs::StdRng::seed_from_u64(33);
    let network = CompiledNetwork::random(&topology, &mut rng)?;
    let input = proportionality::stream_with_activity((2, 32, 32), 64, 0.02, 6);

    let mut accelerator = SneAccelerator::new(SneConfig::with_slices(8));
    let result = accelerator.run(&network, &input)?;

    println!("Fig. 6 network on a 32x32 input, 64 timesteps, 2 % input activity");
    println!();
    println!(
        "{:<18} | {:>10} | {:>10} | {:>12} | {:>12} | {:>8}",
        "layer", "in events", "out events", "SOPs", "cycles", "passes"
    );
    for layer in &result.layers {
        println!(
            "{:<18} | {:>10} | {:>10} | {:>12} | {:>12} | {:>8}",
            layer.description,
            layer.input_events,
            layer.output_events,
            layer.stats.synaptic_ops,
            layer.stats.total_cycles,
            layer.stats.passes
        );
    }
    println!();
    println!(
        "total inference: {:.3} ms, {:.2} uJ, predicted class {}",
        result.inference_time_ms, result.energy.energy_uj, result.predicted_class
    );
    println!();
    println!("Layers whose pass count is 1 fit entirely on the engine and could run");
    println!("in the pipelined layer-per-slice mode; layers with more passes must be");
    println!("time-multiplexed through external memory.");
    Ok(())
}

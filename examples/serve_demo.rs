//! Serving demo: start the HTTP front-end in-process, register two models,
//! drive mixed one-shot + streaming traffic from concurrent clients, then
//! print the live `/v1/stats` snapshot and shut down gracefully.
//!
//! ```bash
//! cargo run --release --example serve_demo
//! ```

use rand::SeedableRng;
use sne::compile::CompiledNetwork;
use sne::proportionality::stream_with_activity;
use sne_model::topology::Topology;
use sne_model::Shape;
use sne_serve::{client, Json, ServerBuilder};
use sne_sim::{ExecStrategy, SneConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two models: a tiny eCNN on an 8x8 retina and a wider one on 16x16.
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let tiny = CompiledNetwork::random(&Topology::tiny(Shape::new(2, 8, 8), 4, 3), &mut rng)?;
    let wide = CompiledNetwork::random(&Topology::tiny(Shape::new(2, 16, 16), 8, 5), &mut rng)?;

    let server = ServerBuilder::new()
        .register(
            "tiny-8x8",
            tiny,
            SneConfig::with_slices(2),
            2,
            ExecStrategy::Sequential,
        )?
        .register(
            "wide-16x16",
            wide,
            SneConfig::with_slices(4),
            2,
            ExecStrategy::Sequential,
        )?
        .start("127.0.0.1:0")?;
    let addr = server.addr();
    println!("sne_serve listening on http://{addr}");
    println!();

    // Concurrent one-shot clients against both models.
    let one_shot = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6u64)
            .map(|i| {
                scope.spawn(move || {
                    let (model, shape) = if i % 2 == 0 {
                        ("tiny-8x8", (2, 8, 8))
                    } else {
                        ("wide-16x16", (2, 16, 16))
                    };
                    let stream = stream_with_activity(shape, 16, 0.04, 300 + i);
                    let (status, body) =
                        client::post(addr, "/v1/infer", &client::infer_body(model, &stream))
                            .unwrap();
                    assert_eq!(status, 200, "{body}");
                    let doc = Json::parse(&body).unwrap();
                    (
                        model,
                        doc.get("predicted_class").and_then(Json::as_u64).unwrap(),
                        doc.get("energy_uj").and_then(Json::as_f64).unwrap(),
                        doc.get("service_us").and_then(Json::as_f64).unwrap(),
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect::<Vec<_>>()
    });
    println!("one-shot traffic (6 concurrent clients):");
    for (model, class, energy_uj, service_us) in one_shot {
        println!(
            "  {model:<11} -> class {class}   {energy_uj:8.4} uJ   served in {service_us:7.1} us"
        );
    }
    println!();

    // A streaming client: a continuous DVS feed pushed in 4-timestep chunks,
    // one HTTP request each; the neuron state lives server-side between
    // requests.
    let feed = stream_with_activity((2, 8, 8), 16, 0.05, 77);
    for chunk in feed.chunks(4) {
        let (status, body) = client::post(
            addr,
            "/v1/stream/sensor-7/push",
            &client::infer_body("tiny-8x8", &chunk),
        )?;
        assert_eq!(status, 200, "{body}");
        let doc = Json::parse(&body).unwrap();
        println!(
            "streamed chunk @t={:<2} -> {} output events, {} cycles",
            doc.get("start_timestep").and_then(Json::as_u64).unwrap(),
            doc.get("events").and_then(Json::as_array).unwrap().len(),
            doc.get("total_cycles").and_then(Json::as_u64).unwrap(),
        );
    }
    let (status, summary) = client::post(addr, "/v1/stream/sensor-7/close", "")?;
    assert_eq!(status, 200);
    let doc = Json::parse(&summary).unwrap();
    println!(
        "stream closed: class {} after {} timesteps, {:.4} uJ total",
        doc.get("predicted_class").and_then(Json::as_u64).unwrap(),
        doc.get("elapsed_timesteps").and_then(Json::as_u64).unwrap(),
        doc.get("energy_uj").and_then(Json::as_f64).unwrap(),
    );
    println!();

    // The live stats snapshot.
    let (status, stats) = client::get(addr, "/v1/stats")?;
    assert_eq!(status, 200);
    let doc = Json::parse(&stats).unwrap();
    let service = doc.get("service_latency_us").unwrap();
    println!("/v1/stats:");
    println!(
        "  completed {}   errors {}   throughput {:.1} req/s",
        doc.get("completed").and_then(Json::as_u64).unwrap(),
        doc.get("errors").and_then(Json::as_u64).unwrap(),
        doc.get("throughput_rps").and_then(Json::as_f64).unwrap(),
    );
    println!(
        "  service latency: p50 {:.0} us   p95 {:.0} us   p99 {:.0} us",
        service.get("p50").and_then(Json::as_f64).unwrap(),
        service.get("p95").and_then(Json::as_f64).unwrap(),
        service.get("p99").and_then(Json::as_f64).unwrap(),
    );
    if let Some(Json::Obj(models)) = doc.get("models") {
        for (name, entry) in models {
            println!(
                "  model {name:<11} requests {}   lanes {}",
                entry.get("requests").and_then(Json::as_u64).unwrap(),
                entry.get("lanes").and_then(Json::as_u64).unwrap(),
            );
        }
    }

    server.shutdown();
    println!();
    println!("server drained and shut down cleanly");
    Ok(())
}

//! Quickstart: compile a small event-based CNN with random 4-bit weights,
//! run one inference on the 8-slice SNE and print what the accelerator did.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use rand::SeedableRng;
use sne_repro::prelude::*;

fn main() -> Result<(), SneError> {
    // 1. Describe the network: a reduced version of the paper's Fig. 6
    //    topology on a 16x16 two-polarity input with 4 classes.
    let topology = Topology::tiny(Shape::new(2, 16, 16), 8, 4);

    // 2. Compile it for the accelerator (random quantized weights here; see
    //    the dvs_gesture example for a trained network).
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let network = CompiledNetwork::random(&topology, &mut rng)?;
    println!(
        "compiled {} accelerated layers, {} neurons total",
        network.accelerated_layers(),
        network.total_neurons()
    );

    // 3. Build an input event stream (2 % activity over 64 timesteps, the
    //    order of magnitude a DVS camera produces).
    let input = proportionality::stream_with_activity((2, 16, 16), 64, 0.02, 7);
    println!(
        "input stream: {} events ({:.2} % activity)",
        input.spike_count(),
        input.activity() * 100.0
    );

    // 4. Run it on an 8-slice SNE.
    let mut accelerator = SneAccelerator::new(SneConfig::with_slices(8));
    let result = accelerator.run(&network, &input)?;

    println!();
    println!("predicted class        : {}", result.predicted_class);
    println!("output spike counts    : {:?}", result.output_spike_counts);
    println!("total cycles           : {}", result.stats.total_cycles);
    println!("synaptic operations    : {}", result.stats.synaptic_ops);
    println!(
        "inference time         : {:.3} ms",
        result.inference_time_ms
    );
    println!(
        "inference rate         : {:.1} inf/s",
        result.inference_rate
    );
    println!("energy per inference   : {:.2} uJ", result.energy.energy_uj);
    println!(
        "energy per operation   : {:.3} pJ/SOP",
        result.energy.energy_per_sop_pj
    );
    println!();
    println!("per-layer execution:");
    for layer in &result.layers {
        println!(
            "  {:<16} | {:>8} input events | {:>8} output events | {:>10} cycles",
            layer.description, layer.input_events, layer.output_events, layer.stats.total_cycles
        );
    }
    Ok(())
}

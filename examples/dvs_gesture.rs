//! DVS-Gesture-like end-to-end workflow: train a small eCNN on the synthetic
//! gesture dataset, quantize it to the SNE-LIF-4b format, run the test split
//! on the cycle-accurate accelerator model and report accuracy, energy per
//! inference and inference rate (the Table I workflow).
//!
//! ```bash
//! cargo run --release --example dvs_gesture
//! ```

use sne::report::DatasetReport;
use sne_repro::prelude::*;

fn main() -> Result<(), SneError> {
    // Synthetic stand-in for IBM DVS-Gesture: 11 classes, 2 polarities,
    // 16x16 after downscaling, 48 timesteps.
    let dataset = GestureDataset::new(16, 48, 2024);
    let topology = Topology::tiny(Shape::new(2, 16, 16), 8, 11);

    // Train the floating-point rate network (stand-in for SLAYER).
    let config = TrainConfig {
        epochs: 3,
        batch_size: 8,
        learning_rate: 0.08,
        ..TrainConfig::default()
    };
    println!("training on 44 synthetic gesture samples ...");
    let outcome = train(&topology, &dataset, 0..44, &config)?;
    for epoch in &outcome.history {
        println!(
            "  epoch {}: loss {:.3}, train accuracy {:.1} %",
            epoch.epoch,
            epoch.mean_loss,
            epoch.accuracy * 100.0
        );
    }

    // Quantize to 4-bit weights and run the held-out samples on the SNE.
    let network = CompiledNetwork::from_rate_network(&outcome.network)?;
    let mut accelerator = SneAccelerator::new(SneConfig::with_slices(8));
    let mut results = Vec::new();
    let mut correct = Vec::new();
    for index in 44..66 {
        let sample = dataset.sample(index);
        let result = accelerator.run(&network, &sample.stream)?;
        correct.push(result.predicted_class == sample.label);
        results.push(result);
    }
    let report = DatasetReport::from_results("DVS-Gesture-like", &results, &correct);

    println!();
    println!("{}", report.to_row());
    println!(
        "paper reference (real IBM DVS-Gesture, full network): 92.8 %, 80-261 uJ/inf, 141-43 inf/s"
    );
    Ok(())
}

//! Integration suite of the parallel execution core: `Threaded(n)` must be
//! **bit-exact** with `Sequential` at every level of the stack — engine
//! (per-slice workers), sessions (pipelined layer stages) and batch runner
//! (lanes on worker threads) — and the stats reduction must be a true merge
//! (associative, order-independent).

use proptest::prelude::*;
use sne::batch::BatchRunner;
use sne::compile::CompiledNetwork;
use sne::session::{InferenceSession, PipelinedSession};
use sne::ExecStrategy;
use sne_event::{Event, EventStream};
use sne_model::topology::Topology;
use sne_model::Shape;
use sne_sim::mapping::{LifHardwareParams, MapShape};
use sne_sim::{CycleStats, Engine, LayerMapping, LayerState, SneConfig};

/// The thread counts every property is checked against.
const THREADS: [usize; 3] = [2, 3, 8];

fn small_config(num_slices: usize) -> SneConfig {
    SneConfig {
        num_slices,
        clusters_per_slice: 4,
        neurons_per_cluster: 8,
        ..SneConfig::default()
    }
}

fn compiled(seed: u64) -> CompiledNetwork {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
    CompiledNetwork::random(&Topology::tiny(Shape::new(2, 8, 8), 4, 3), &mut rng).unwrap()
}

proptest! {
    /// Engine level: for any random layer (kernel, channel count spanning
    /// one or several mapping passes, leak/threshold) and any random event
    /// stream, `Threaded(n)` produces the identical `LayerRunOutput` —
    /// output events, `CycleStats` and per-timestep cycle profile — as
    /// `Sequential`, for n in {2, 3, 8}. The workloads are sized (and
    /// asserted) to cross `Engine::MIN_PARALLEL_UNITS`, so the threaded
    /// variants genuinely fan out instead of taking the small-pass fallback.
    #[test]
    fn threaded_engine_runs_are_bit_exact(
        out_channels in 1u16..10,
        kernel_index in 0usize..2,
        leak in 0i16..3,
        threshold in 1i16..6,
        num_slices in 2usize..4,
        spikes in prop::collection::vec(
            (0u32..16, 0u16..4, 0u16..4),
            520..700,
        ),
        weight_seed in 0u64..1000,
    ) {
        let kernel = [1u16, 3][kernel_index];
        let weight_count =
            usize::from(out_channels) * usize::from(kernel) * usize::from(kernel);
        let weights: Vec<i8> = (0..weight_count)
            .map(|i| (((i as u64).wrapping_mul(weight_seed + 7) % 15) as i8) - 7)
            .collect();
        let mapping = LayerMapping::conv(
            MapShape::new(1, 4, 4),
            out_channels,
            kernel,
            weights,
            LifHardwareParams { leak, threshold },
        )
        .unwrap();
        let mut stream = EventStream::new(4, 4, 1, 16);
        for (t, x, y) in spikes {
            stream.push(Event::update(t, 0, x, y)).unwrap();
        }
        prop_assert!(stream.to_op_sequence().len() * num_slices >= Engine::MIN_PARALLEL_UNITS);

        let mut sequential = Engine::new(small_config(num_slices));
        let expected = sequential.run_layer(&mapping, &stream).unwrap();
        for threads in THREADS {
            let mut threaded = Engine::with_exec(
                small_config(num_slices),
                ExecStrategy::threaded(threads),
            );
            let result = threaded.run_layer(&mapping, &stream).unwrap();
            prop_assert_eq!(&result.output, &expected.output);
            prop_assert_eq!(result.stats, expected.stats);
            prop_assert_eq!(&result.timestep_cycles, &expected.timestep_cycles);
        }
    }

    /// Engine level, stateful: chunked `run_layer_stateful` resume under a
    /// threaded strategy carries the identical neuron state across chunk
    /// boundaries (events of chunked threaded == whole sequential). The
    /// spike count guarantees the larger chunk crosses the parallel gate
    /// whatever the cut (a tiny chunk taking the sequential fallback while
    /// the other fans out is exactly the mixed regime streaming produces).
    #[test]
    fn threaded_stateful_chunks_are_bit_exact(
        cut in 1u32..16,
        threshold in 2i16..7,
        spikes in prop::collection::vec(
            (0u32..16, 0u16..4, 0u16..4),
            1400..1600,
        ),
    ) {
        let mapping = LayerMapping::conv(
            MapShape::new(1, 4, 4),
            4,
            3,
            vec![2i8; 4 * 9],
            LifHardwareParams { leak: 1, threshold },
        )
        .unwrap();
        let mut stream = EventStream::new(4, 4, 1, 16);
        for (t, x, y) in spikes {
            stream.push(Event::update(t, 0, x, y)).unwrap();
        }
        let mut whole = Engine::new(small_config(2));
        let expected = whole.run_layer(&mapping, &stream).unwrap();

        for threads in THREADS {
            let mut chunked = Engine::with_exec(
                small_config(2),
                ExecStrategy::threaded(threads),
            );
            let mut state = LayerState::new(&small_config(2), &mapping);
            let mut events = Vec::new();
            let mut crossed = false;
            for (i, (start, end)) in [(0, cut), (cut, 16)].into_iter().enumerate() {
                let chunk = stream.window(start, end);
                crossed |= chunk.to_op_sequence().len() * 2 >= Engine::MIN_PARALLEL_UNITS;
                let run = chunked
                    .run_layer_stateful(&mapping, &chunk, &mut state, i > 0)
                    .unwrap();
                events.extend(run.output.into_events().into_iter().map(|e| Event {
                    t: e.t + start,
                    ..e
                }));
            }
            prop_assert!(crossed, "no chunk crossed the parallel gate");
            prop_assert_eq!(&events[..], expected.output.as_slice());
        }
    }

    /// Batch level: the `BatchReport` of N lanes driven on worker threads is
    /// bit-identical to the sequential round-robin runner — per-stream
    /// results, aggregated stats, makespan and energy.
    #[test]
    fn threaded_batch_reports_are_bit_exact(
        lanes in 1usize..5,
        num_streams in 0usize..7,
        network_seed in 0u64..16,
        stream_seed in 0u64..1000,
    ) {
        let network = compiled(network_seed);
        let streams: Vec<EventStream> = (0..num_streams)
            .map(|i| {
                sne::proportionality::stream_with_activity(
                    (2, 8, 8),
                    8,
                    0.03 + 0.01 * i as f64,
                    stream_seed + i as u64,
                )
            })
            .collect();
        let mut sequential =
            BatchRunner::new(network.clone(), SneConfig::with_slices(2), lanes).unwrap();
        let expected = sequential.run(&streams).unwrap();
        for threads in THREADS {
            let mut parallel = BatchRunner::with_exec(
                network.clone(),
                SneConfig::with_slices(2),
                lanes,
                ExecStrategy::threaded(threads),
            )
            .unwrap();
            let report = parallel.run(&streams).unwrap();
            prop_assert_eq!(&report.results, &expected.results);
            prop_assert_eq!(report.total_stats, expected.total_stats);
            prop_assert_eq!(report.lanes, expected.lanes);
            // Scheduler workers are clamped to the pool size: more workers
            // than engines would only queue on the pool.
            prop_assert_eq!(report.threads, threads.min(lanes));
            prop_assert!((report.makespan_ms - expected.makespan_ms).abs() < 1e-12);
            prop_assert!((report.total_energy_uj - expected.total_energy_uj).abs() < 1e-12);
            prop_assert!((report.aggregate_rate - expected.aggregate_rate).abs() < 1e-9
                || (report.aggregate_rate.is_infinite() && expected.aggregate_rate.is_infinite()));
        }
    }

    /// The stats reduction is a true merge: associative and independent of
    /// the order partial stats are combined in — the property the parallel
    /// fan-out's determinism rests on.
    #[test]
    fn stats_merge_is_associative_and_order_independent(
        a_seed in 0u64..1_000_000,
        b_seed in 0u64..1_000_000,
        c_seed in 0u64..1_000_000,
    ) {
        fn stats_from(seed: u64) -> CycleStats {
            // Spread the seed over every field so no counter is degenerate.
            let v = |k: u64| seed.wrapping_mul(6_364_136_223_846_793_005).rotate_left(k as u32) % 1_000;
            CycleStats {
                total_cycles: v(1),
                update_cycles: v(2),
                fire_cycles: v(3),
                reset_cycles: v(4),
                stall_cycles: v(5),
                synaptic_ops: v(6),
                tlu_skipped_updates: v(7),
                active_cluster_cycles: v(8),
                gated_cluster_cycles: v(9),
                input_events: v(10),
                output_events: v(11),
                streamer_reads: v(12),
                streamer_writes: v(13),
                xbar_transfers: v(14),
                collector_events: v(15),
                passes: v(16),
            }
        }
        let (a, b, c) = (stats_from(a_seed), stats_from(b_seed), stats_from(c_seed));

        // Associativity: (a + b) + c == a + (b + c).
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        prop_assert_eq!(left, right);

        // Order independence: any permutation gives the same totals.
        let mut forward = CycleStats::new();
        for s in [&a, &b, &c] {
            forward.merge(s);
        }
        let mut backward = CycleStats::new();
        for s in [&c, &b, &a] {
            backward.merge(s);
        }
        prop_assert_eq!(forward, backward);
    }
}

#[test]
fn threaded_sessions_match_sequential_end_to_end() {
    let network = compiled(5);
    // Busy enough that the first conv layer crosses the engine's parallel
    // gate both for whole-sample inference and for every 12-timestep chunk.
    let stream = sne::proportionality::stream_with_activity((2, 8, 8), 24, 0.5, 42);
    assert!(stream.to_op_sequence().len() * 2 >= Engine::MIN_PARALLEL_UNITS);

    let mut sequential = InferenceSession::new(network.clone(), SneConfig::with_slices(2)).unwrap();
    let expected = sequential.infer(&stream).unwrap();
    for threads in THREADS {
        let mut session = InferenceSession::with_exec(
            network.clone(),
            SneConfig::with_slices(2),
            ExecStrategy::threaded(threads),
        )
        .unwrap();
        assert_eq!(session.infer(&stream).unwrap(), expected);
        // Streaming chunks through the threaded session carries state
        // identically too.
        session.reset();
        let mut counts = vec![0u32; 3];
        for chunk in stream.chunks(12) {
            assert!(chunk.to_op_sequence().len() * 2 >= Engine::MIN_PARALLEL_UNITS);
            let out = session.push(&chunk).unwrap();
            for event in out.output.iter().filter(|e| e.is_spike()) {
                counts[usize::from(event.ch)] += 1;
            }
        }
        assert_eq!(counts, expected.output_spike_counts);
    }
}

#[test]
fn threaded_pipelined_session_matches_sequential() {
    let network = compiled(23);
    let stream = sne::proportionality::stream_with_activity((2, 8, 8), 24, 0.04, 77);
    let mut sequential = PipelinedSession::new(network.clone(), SneConfig::with_slices(8)).unwrap();
    let expected = sequential.infer(&stream).unwrap();
    for threads in THREADS {
        let mut session = PipelinedSession::with_exec(
            network.clone(),
            SneConfig::with_slices(8),
            ExecStrategy::threaded(threads),
        )
        .unwrap();
        assert_eq!(
            session.infer(&stream).unwrap(),
            expected,
            "threads = {threads}"
        );
    }
}

#[test]
fn execution_units_are_send() {
    fn assert_send<T: Send>() {}
    // The tentpole's structural requirement: every execution unit can move
    // to a worker thread.
    assert_send::<sne_sim::slice::Slice>();
    assert_send::<sne_sim::cluster::ClusterState>();
    assert_send::<LayerState>();
    assert_send::<CycleStats>();
    assert_send::<Engine>();
    assert_send::<InferenceSession>();
    assert_send::<PipelinedSession>();
    assert_send::<BatchRunner>();
}

#[test]
fn merge_matches_add_assign() {
    let a = CycleStats {
        total_cycles: 3,
        synaptic_ops: 9,
        passes: 1,
        ..CycleStats::new()
    };
    let mut via_merge = CycleStats::new();
    via_merge.merge(&a);
    via_merge.merge(&a);
    let mut via_add = CycleStats::new();
    via_add += a;
    via_add += a;
    assert_eq!(via_merge, via_add);
    assert_eq!(via_merge.total_cycles, 6);
}

//! Loopback end-to-end suite of the `sne_serve` front-end: concurrent HTTP
//! clients must receive **bit-identical** predictions/cycles/energy to
//! direct [`InferenceSession`] calls (the JSON codec's shortest-roundtrip
//! float formatting makes exact comparison possible), a streaming session's
//! neuron state must survive across independent HTTP requests, and graceful
//! shutdown must drain in-flight work.

use std::sync::Arc;

use sne::compile::CompiledNetwork;
use sne::session::InferenceSession;
use sne_event::EventStream;
use sne_model::topology::Topology;
use sne_model::Shape;
use sne_serve::{client, Json, ServerBuilder};
use sne_sim::{ExecStrategy, SneConfig};

fn compiled(seed: u64) -> CompiledNetwork {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
    CompiledNetwork::random(&Topology::tiny(Shape::new(2, 8, 8), 4, 3), &mut rng).unwrap()
}

fn sample(seed: u64) -> EventStream {
    sne::proportionality::stream_with_activity((2, 8, 8), 16, 0.05, seed)
}

/// Asserts a served inference body is bit-identical to a direct result.
fn assert_result_matches(body: &str, expected: &sne::InferenceResult) {
    let doc = Json::parse(body).unwrap();
    assert_eq!(
        doc.get("predicted_class").and_then(Json::as_u64),
        Some(expected.predicted_class as u64)
    );
    let counts: Vec<u64> = doc
        .get("output_spike_counts")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|c| c.as_u64().unwrap())
        .collect();
    let expected_counts: Vec<u64> = expected
        .output_spike_counts
        .iter()
        .map(|&c| u64::from(c))
        .collect();
    assert_eq!(counts, expected_counts);
    assert_eq!(
        doc.get("total_cycles").and_then(Json::as_u64),
        Some(expected.stats.total_cycles)
    );
    assert_eq!(
        doc.get("synaptic_ops").and_then(Json::as_u64),
        Some(expected.stats.synaptic_ops)
    );
    // Floats are compared BIT-exactly: the wire format is shortest-roundtrip.
    for (key, value) in [
        ("energy_uj", expected.energy.energy_uj),
        ("inference_time_ms", expected.inference_time_ms),
        ("inference_rate", expected.inference_rate),
        ("mean_activity", expected.mean_activity),
    ] {
        assert_eq!(
            doc.get(key).and_then(Json::as_f64).map(f64::to_bits),
            Some(value.to_bits()),
            "field {key}"
        );
    }
}

#[test]
fn concurrent_clients_match_direct_sessions_bit_exactly() {
    let network = Arc::new(compiled(11));
    let server = ServerBuilder::new()
        .register(
            "tiny",
            Arc::clone(&network),
            SneConfig::with_slices(2),
            3,
            ExecStrategy::Sequential,
        )
        .unwrap()
        .start("127.0.0.1:0")
        .unwrap();
    let addr = server.addr();

    let streams: Vec<EventStream> = (0..8).map(|i| sample(40 + i)).collect();
    let mut session =
        InferenceSession::new(Arc::clone(&network), SneConfig::with_slices(2)).unwrap();
    let expected: Vec<_> = streams.iter().map(|s| session.infer(s).unwrap()).collect();

    // 8 concurrent clients against a 3-engine pool.
    let bodies: Vec<(u16, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = streams
            .iter()
            .map(|stream| {
                let body = client::infer_body("tiny", stream);
                scope.spawn(move || client::post(addr, "/v1/infer", &body).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for ((status, body), expected) in bodies.iter().zip(&expected) {
        assert_eq!(*status, 200, "{body}");
        assert_result_matches(body, expected);
    }

    // Stats reflect the traffic.
    let (status, stats) = client::get(addr, "/v1/stats").unwrap();
    assert_eq!(status, 200);
    let doc = Json::parse(&stats).unwrap();
    assert_eq!(doc.get("completed").and_then(Json::as_u64), Some(8));
    assert_eq!(doc.get("errors").and_then(Json::as_u64), Some(0));
    let tiny = doc.get("models").unwrap().get("tiny").unwrap();
    assert_eq!(tiny.get("requests").and_then(Json::as_u64), Some(8));
    assert_eq!(tiny.get("lanes").and_then(Json::as_u64), Some(3));
    let service = doc.get("service_latency_us").unwrap();
    assert_eq!(service.get("count").and_then(Json::as_u64), Some(8));
    assert!(service.get("p99").and_then(Json::as_f64).unwrap() > 0.0);

    server.shutdown();
}

#[test]
fn streaming_session_state_survives_across_requests() {
    let network = Arc::new(compiled(13));
    let server = ServerBuilder::new()
        .register(
            "tiny",
            Arc::clone(&network),
            SneConfig::with_slices(2),
            2,
            ExecStrategy::Sequential,
        )
        .unwrap()
        .start("127.0.0.1:0")
        .unwrap();
    let addr = server.addr();

    let stream = sample(70);
    let mut reference =
        InferenceSession::new(Arc::clone(&network), SneConfig::with_slices(2)).unwrap();

    // Push the feed in 4-timestep chunks, one HTTP request each; interleave
    // unrelated one-shot traffic so the session provably does not depend on
    // a dedicated engine.
    for (i, chunk) in stream.chunks(4).enumerate() {
        let expected = reference.push(&chunk).unwrap();
        let body = client::infer_body("tiny", &chunk);
        let (status, response) = client::post(addr, "/v1/stream/dvs-0/push", &body).unwrap();
        assert_eq!(status, 200, "{response}");
        let doc = Json::parse(&response).unwrap();
        assert_eq!(
            doc.get("start_timestep").and_then(Json::as_u64),
            Some(u64::from(expected.start_timestep))
        );
        assert_eq!(
            doc.get("timesteps").and_then(Json::as_u64),
            Some(u64::from(expected.timesteps))
        );
        assert_eq!(
            doc.get("total_cycles").and_then(Json::as_u64),
            Some(expected.stats.total_cycles)
        );
        assert_eq!(
            doc.get("chunks_pushed").and_then(Json::as_u64),
            Some(i as u64 + 1)
        );
        // Spike-for-spike identical output on the absolute timeline.
        let served: Vec<(u64, u64, u64, u64)> = doc
            .get("events")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .map(|e| {
                let f = e.as_array().unwrap();
                (
                    f[0].as_u64().unwrap(),
                    f[1].as_u64().unwrap(),
                    f[2].as_u64().unwrap(),
                    f[3].as_u64().unwrap(),
                )
            })
            .collect();
        let direct: Vec<(u64, u64, u64, u64)> = expected
            .output
            .iter()
            .filter(|e| e.is_spike())
            .map(|e| {
                (
                    u64::from(e.t),
                    u64::from(e.ch),
                    u64::from(e.x),
                    u64::from(e.y),
                )
            })
            .collect();
        assert_eq!(served, direct);

        // Interleaved one-shot traffic on the same pool.
        let (status, _) = client::post(
            addr,
            "/v1/infer",
            &client::infer_body("tiny", &sample(500 + i as u64)),
        )
        .unwrap();
        assert_eq!(status, 200);
    }
    assert_eq!(server.active_streams(), 1);

    // Closing returns the accumulated summary — bit-identical to the
    // dedicated session's.
    let (status, closed) = client::post(addr, "/v1/stream/dvs-0/close", "").unwrap();
    assert_eq!(status, 200, "{closed}");
    assert_result_matches(&closed, &reference.summary());
    let doc = Json::parse(&closed).unwrap();
    assert_eq!(doc.get("closed"), Some(&Json::Bool(true)));
    assert_eq!(
        doc.get("elapsed_timesteps").and_then(Json::as_u64),
        Some(16)
    );
    assert_eq!(server.active_streams(), 0);

    // The session is gone now.
    let (status, _) = client::post(addr, "/v1/stream/dvs-0/close", "").unwrap();
    assert_eq!(status, 404);
    server.shutdown();
}

#[test]
fn two_models_are_served_independently() {
    let network_a = Arc::new(compiled(21));
    let network_b = Arc::new(compiled(22));
    let server = ServerBuilder::new()
        .register(
            "a",
            Arc::clone(&network_a),
            SneConfig::with_slices(2),
            1,
            ExecStrategy::Sequential,
        )
        .unwrap()
        .register(
            "b",
            Arc::clone(&network_b),
            SneConfig::with_slices(4),
            2,
            ExecStrategy::Sequential,
        )
        .unwrap()
        .start("127.0.0.1:0")
        .unwrap();
    let stream = sample(90);
    let mut session_a = InferenceSession::new(network_a, SneConfig::with_slices(2)).unwrap();
    let mut session_b = InferenceSession::new(network_b, SneConfig::with_slices(4)).unwrap();
    let (status, body) = client::post(
        server.addr(),
        "/v1/infer",
        &client::infer_body("a", &stream),
    )
    .unwrap();
    assert_eq!(status, 200);
    assert_result_matches(&body, &session_a.infer(&stream).unwrap());
    let (status, body) = client::post(
        server.addr(),
        "/v1/infer",
        &client::infer_body("b", &stream),
    )
    .unwrap();
    assert_eq!(status, 200);
    assert_result_matches(&body, &session_b.infer(&stream).unwrap());
    server.shutdown();
}

#[test]
fn protocol_errors_are_reported_not_fatal() {
    let server = ServerBuilder::new()
        .register(
            "tiny",
            compiled(31),
            SneConfig::with_slices(2),
            1,
            ExecStrategy::Sequential,
        )
        .unwrap()
        .start("127.0.0.1:0")
        .unwrap();
    let addr = server.addr();
    let cases = [
        ("POST", "/v1/infer", "not json at all", 400),
        ("POST", "/v1/infer", "{\"timesteps\":4,\"events\":[]}", 400), // no model
        (
            "POST",
            "/v1/infer",
            "{\"model\":\"nope\",\"timesteps\":4,\"events\":[]}",
            404,
        ),
        (
            "POST",
            "/v1/infer",
            // x = 400 is outside the 8x8 input geometry.
            "{\"model\":\"tiny\",\"timesteps\":4,\"events\":[[0,0,400,0]]}",
            400,
        ),
        (
            "POST",
            "/v1/infer",
            "{\"model\":\"tiny\",\"events\":[]}",
            400, // no timesteps
        ),
        (
            "POST",
            "/v1/infer",
            // timesteps beyond MAX_REQUEST_TIMESTEPS: a tiny body must not
            // be able to trigger a multi-gigabyte per-timestep allocation.
            "{\"model\":\"tiny\",\"timesteps\":4294967295,\"events\":[]}",
            400,
        ),
        ("POST", "/v1/elsewhere", "{}", 404),
        ("GET", "/v1/stream/x/push", "", 405),
        (
            "POST",
            "/v1/stream/x/push",
            "{\"timesteps\":4,\"events\":[]}",
            400, // first push must name a model
        ),
        ("POST", "/v1/stream/x/close", "", 404),
    ];
    for (method, path, body, expected_status) in cases {
        let (status, response) = client::request(addr, method, path, body).unwrap();
        assert_eq!(status, expected_status, "{method} {path}: {response}");
        assert!(
            Json::parse(&response).unwrap().get("error").is_some(),
            "{response}"
        );
    }
    // A failed FIRST push must not leak a parked session the client was
    // never told about.
    let (status, _) = client::post(
        addr,
        "/v1/stream/leaky/push",
        "{\"model\":\"tiny\",\"events\":[]}",
    )
    .unwrap();
    assert_eq!(status, 400);
    assert_eq!(server.active_streams(), 0);
    let (status, _) = client::post(addr, "/v1/stream/leaky/close", "").unwrap();
    assert_eq!(status, 404);

    // The server is still healthy after all that abuse.
    let stream = sample(99);
    let (status, _) =
        client::post(addr, "/v1/infer", &client::infer_body("tiny", &stream)).unwrap();
    assert_eq!(status, 200);
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let network = Arc::new(compiled(41));
    let server = ServerBuilder::new()
        .register(
            "tiny",
            Arc::clone(&network),
            SneConfig::with_slices(2),
            2,
            ExecStrategy::Sequential,
        )
        .unwrap()
        .start("127.0.0.1:0")
        .unwrap();
    let addr = server.addr();
    let mut session = InferenceSession::new(network, SneConfig::with_slices(2)).unwrap();

    // Closed-loop clients hammer the server; shutdown lands mid-traffic.
    // The guarantee under test: every *accepted* request completes with a
    // full, correct response — connections attempted after shutdown may be
    // refused, which the clients tolerate.
    let outcomes: Vec<Vec<(u16, String, u64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4u64)
            .map(|c| {
                scope.spawn(move || {
                    let mut served = Vec::new();
                    for i in 0..6u64 {
                        let seed = 200 + c * 10 + i;
                        let body = client::infer_body("tiny", &sample(seed));
                        match client::post(addr, "/v1/infer", &body) {
                            Ok((status, body)) => served.push((status, body, seed)),
                            Err(_) => break, // server stopped accepting
                        }
                    }
                    served
                })
            })
            .collect();
        // Let some traffic land, then shut down while clients are mid-loop.
        std::thread::sleep(std::time::Duration::from_millis(30));
        server.shutdown();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut total_served = 0;
    for outcome in outcomes {
        for (status, body, seed) in outcome {
            // An accepted request never gets a half answer.
            assert_eq!(status, 200, "{body}");
            assert_result_matches(&body, &session.infer(&sample(seed)).unwrap());
            total_served += 1;
        }
    }
    assert!(total_served > 0, "no request completed before shutdown");
}

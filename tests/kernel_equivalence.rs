//! Equivalence suite of the blocked membrane kernel: the SIMD-blocked
//! [`Kernel::Blocked`] datapath must reproduce the scalar oracle
//! ([`Kernel::Scalar`]) and the naive mapping walk **bit-exactly** — kernel
//! primitives, engine outputs, cycle statistics, execution traces, energy
//! reports and persisted [`LayerState`] — over random conv/dense geometries,
//! span lengths straddling the block-width boundary, all-`±127` saturation
//! storms, chunked stateful resume and every [`ExecStrategy`]. The scalar
//! path is the reference; the blocked path is only allowed to move host
//! wall-clock time.

use proptest::prelude::*;
use sne_event::{Event, EventStream};
use sne_sim::mapping::{LayerMapping, LifHardwareParams, MapShape};
use sne_sim::plan::LayerPlan;
use sne_sim::{Engine, ExecStrategy, Kernel, LayerState, SneConfig};

/// Every execution strategy the engine supports, sequential first.
const STRATEGIES: [ExecStrategy; 4] = [
    ExecStrategy::Sequential,
    ExecStrategy::Threaded(2),
    ExecStrategy::Threaded(3),
    ExecStrategy::Threaded(8),
];

fn small_config(num_slices: usize) -> SneConfig {
    SneConfig {
        num_slices,
        clusters_per_slice: 4,
        neurons_per_cluster: 8,
        ..SneConfig::default()
    }
}

fn conv_mapping(
    in_channels: u16,
    height: u16,
    width: u16,
    out_channels: u16,
    kernel: u16,
    weight_seed: u64,
    params: LifHardwareParams,
) -> LayerMapping {
    let count = usize::from(out_channels)
        * usize::from(in_channels)
        * usize::from(kernel)
        * usize::from(kernel);
    let weights: Vec<i8> = (0..count as u64)
        .map(|i| ((i.wrapping_mul(weight_seed.wrapping_add(13)) % 15) as i8) - 7)
        .collect();
    LayerMapping::conv(
        MapShape::new(in_channels, height, width),
        out_channels,
        kernel,
        weights,
        params,
    )
    .unwrap()
}

fn dense_mapping(
    input: MapShape,
    outputs: u16,
    weight_seed: u64,
    params: LifHardwareParams,
) -> LayerMapping {
    let count = usize::from(outputs) * input.len();
    let weights: Vec<i8> = (0..count as u64)
        .map(|i| ((i.wrapping_mul(weight_seed.wrapping_add(29)) % 15) as i8) - 7)
        .collect();
    LayerMapping::dense(input, outputs, weights, params).unwrap()
}

/// Runs one layer on an engine forced to `kernel`, naive or planned.
fn run_with_kernel(
    config: SneConfig,
    exec: ExecStrategy,
    kernel: Kernel,
    mapping: &LayerMapping,
    plan: Option<&LayerPlan>,
    stream: &EventStream,
) -> sne_sim::LayerRunOutput {
    let mut engine = Engine::with_exec(config, exec);
    engine.set_kernel(kernel);
    match plan {
        Some(plan) => engine.run_layer_planned(mapping, plan, stream).unwrap(),
        None => engine.run_layer(mapping, stream).unwrap(),
    }
}

proptest! {
    /// Primitive level: `accumulate_span` over random membrane states and
    /// span lengths 0..=3·block-width (every boundary straddle) — identical
    /// rewritten states and identical span max on both kernels, with the
    /// out-of-span arena lanes untouched.
    #[test]
    fn accumulate_span_blocked_matches_scalar(
        // Arena lanes always hold clamped membrane states (the datapath
        // invariant the blocked kernel's masked tail relies on).
        mem in prop::collection::vec(-128i16..=127, 1..64),
        weights in prop::collection::vec(-128i8..=127, 0..25),
        start_seed in 0usize..64,
    ) {
        let start = start_seed % mem.len();
        let len = weights.len().min(mem.len() - start);
        let weights = &weights[..len];

        let mut scalar = mem.clone();
        let scalar_max = Kernel::Scalar.accumulate_span(&mut scalar, start, weights);
        let mut blocked = mem.clone();
        let blocked_max = Kernel::Blocked.accumulate_span(&mut blocked, start, weights);
        prop_assert_eq!(&blocked, &scalar);
        prop_assert_eq!(blocked_max, scalar_max);
        // Lanes outside the span are untouched (the masked-tail contract).
        prop_assert_eq!(&blocked[..start], &mem[..start]);
        prop_assert_eq!(&blocked[start + len..], &mem[start + len..]);
    }

    /// Primitive level: the windowed lane-max form (`accumulate_span_max` +
    /// `reduce_lane_max`, the slice hot path) — identical rewritten states
    /// and identical reduced window maximum on both kernels, and identical
    /// to folding the per-span `accumulate_span` maxima, over multi-span
    /// windows straddling the block width. Half the spans carry trailing
    /// weight padding past `len` (the plan-pool layout) whose junk values
    /// must be ignored.
    #[test]
    fn lane_max_accumulation_matches_scalar_and_per_span_reduction(
        mem in prop::collection::vec(-128i16..=127, 8..64),
        spans in prop::collection::vec(
            (0usize..64, prop::collection::vec(-128i8..=127, 0..20), 0u8..2),
            1..6,
        ),
    ) {
        use sne_sim::simd::{BLOCK_LANES, LANE_FLOOR};

        let mut scalar = mem.clone();
        let mut blocked = mem.clone();
        let mut folded = mem.clone();
        let mut scalar_lanes = LANE_FLOOR;
        let mut blocked_lanes = LANE_FLOOR;
        let mut folded_max = i16::from(i8::MIN);
        for (start_seed, weights, pad) in &spans {
            let start = start_seed % mem.len();
            let len = weights.len().min(mem.len() - start);
            let mut weights = weights[..len].to_vec();
            if *pad == 1 {
                // Padding bytes past `len` must never influence anything.
                weights.extend(std::iter::repeat_n(0x55u8 as i8, BLOCK_LANES + 1));
            }
            Kernel::Scalar.accumulate_span_max(
                &mut scalar, start, &weights, len, &mut scalar_lanes,
            );
            Kernel::Blocked.accumulate_span_max(
                &mut blocked, start, &weights, len, &mut blocked_lanes,
            );
            folded_max = folded_max.max(
                Kernel::Scalar.accumulate_span(&mut folded, start, &weights[..len]),
            );
        }
        prop_assert_eq!(&scalar, &folded);
        prop_assert_eq!(&blocked, &folded);
        let scalar_reduced = Kernel::Scalar.reduce_lane_max(&scalar_lanes);
        let blocked_reduced = Kernel::Blocked.reduce_lane_max(&blocked_lanes);
        prop_assert_eq!(scalar_reduced, folded_max);
        prop_assert_eq!(blocked_reduced, folded_max);
        // Reduction is kernel-independent of the lane distribution.
        prop_assert_eq!(Kernel::Blocked.reduce_lane_max(&scalar_lanes), folded_max);
        prop_assert_eq!(Kernel::Scalar.reduce_lane_max(&blocked_lanes), folded_max);
    }

    /// Primitive level: saturation storm — every state and weight pinned to
    /// `±127`, the worst case for the saturating lane adds and the clamp.
    #[test]
    fn saturation_storm_is_bit_exact(
        signs in prop::collection::vec(0u8..2, 8..40),
        weight_signs in prop::collection::vec(0u8..2, 8..40),
        leak_total in -600i32..600,
        threshold in 1i16..128,
    ) {
        let mem: Vec<i16> = signs.iter().map(|&s| if s == 1 { 127 } else { -128 }).collect();
        let weights: Vec<i8> = weight_signs
            .iter()
            .take(mem.len())
            .map(|&s| if s == 1 { 127 } else { -127 })
            .collect();

        let mut scalar = mem.clone();
        let scalar_max = Kernel::Scalar.accumulate_span(&mut scalar, 0, &weights);
        let mut blocked = mem.clone();
        let blocked_max = Kernel::Blocked.accumulate_span(&mut blocked, 0, &weights);
        prop_assert_eq!(&blocked, &scalar);
        prop_assert_eq!(blocked_max, scalar_max);

        let mut scalar_leak = mem.clone();
        Kernel::Scalar.apply_leak(&mut scalar_leak, leak_total);
        let mut blocked_leak = mem.clone();
        Kernel::Blocked.apply_leak(&mut blocked_leak, leak_total);
        prop_assert_eq!(&blocked_leak, &scalar_leak);

        let mut scalar_fire = mem.clone();
        let mut scalar_out = Vec::new();
        let sm = Kernel::Scalar.fire_walk(&mut scalar_fire, 1, threshold, &mut scalar_out);
        let mut blocked_fire = mem;
        let mut blocked_out = Vec::new();
        let bm = Kernel::Blocked.fire_walk(&mut blocked_fire, 1, threshold, &mut blocked_out);
        prop_assert_eq!(&blocked_fire, &scalar_fire);
        prop_assert_eq!(&blocked_out, &scalar_out);
        prop_assert_eq!(bm, sm);
    }

    /// Primitive level: `fire_walk` — identical post-leak states, identical
    /// fired indices (order included) and identical running max for any
    /// leak/threshold over lengths straddling the block width.
    #[test]
    fn fire_walk_blocked_matches_scalar(
        mem in prop::collection::vec(-128i16..=127, 1..41),
        leak in 0i16..5,
        threshold in 1i16..40,
    ) {
        let mut scalar = mem.clone();
        let mut scalar_out = vec![7usize];
        let sm = Kernel::Scalar.fire_walk(&mut scalar, leak, threshold, &mut scalar_out);
        let mut blocked = mem;
        let mut blocked_out = vec![7usize];
        let bm = Kernel::Blocked.fire_walk(&mut blocked, leak, threshold, &mut blocked_out);
        prop_assert_eq!(&blocked, &scalar);
        prop_assert_eq!(&blocked_out, &scalar_out);
        prop_assert_eq!(bm, sm);
    }

    /// Engine level: blocked ≡ scalar ≡ naive. One conv layer over random
    /// geometry, on the naive *and* the planned datapath, under every
    /// execution strategy — identical outputs, statistics and per-timestep
    /// profiles everywhere. The scalar naive run is the single oracle.
    #[test]
    fn engine_runs_agree_across_kernels_and_datapaths(
        out_channels in 1u16..11,
        kernel_index in 0usize..2,
        leak in 0i16..3,
        threshold in 1i16..6,
        num_slices in 2usize..4,
        spikes in prop::collection::vec(
            (0u32..12, 0u16..4, 0u16..4),
            30..120,
        ),
        weight_seed in 0u64..1000,
    ) {
        let kernel = [1u16, 3][kernel_index];
        let mapping = conv_mapping(
            1, 4, 4, out_channels, kernel, weight_seed,
            LifHardwareParams { leak, threshold },
        );
        let plan = LayerPlan::build(&mapping);
        let mut stream = EventStream::new(4, 4, 1, 12);
        for (t, x, y) in spikes {
            stream.push(Event::update(t, 0, x, y)).unwrap();
        }
        let config = small_config(num_slices);
        let expected = run_with_kernel(
            config, ExecStrategy::Sequential, Kernel::Scalar, &mapping, None, &stream,
        );
        for exec in STRATEGIES {
            for membrane_kernel in [Kernel::Scalar, Kernel::Blocked] {
                for plan in [None, Some(&plan)] {
                    let result = run_with_kernel(
                        config, exec, membrane_kernel, &mapping, plan, &stream,
                    );
                    prop_assert_eq!(&result.output, &expected.output);
                    prop_assert_eq!(result.stats, expected.stats);
                    prop_assert_eq!(&result.timestep_cycles, &expected.timestep_cycles);
                }
            }
        }
    }

    /// Engine level, dense: the long contiguous dense strides are the
    /// blocked kernel's best case — and must still be bit-exact.
    #[test]
    fn dense_runs_agree_across_kernels(
        outputs in 1u16..40,
        leak in 0i16..3,
        threshold in 1i16..6,
        spikes in prop::collection::vec(
            (0u32..10, 0u16..4, 0u16..4),
            10..80,
        ),
        weight_seed in 0u64..1000,
    ) {
        let mapping = dense_mapping(
            MapShape::new(1, 4, 4), outputs, weight_seed,
            LifHardwareParams { leak, threshold },
        );
        let plan = LayerPlan::build(&mapping);
        let mut stream = EventStream::new(4, 4, 1, 10);
        for (t, x, y) in spikes {
            stream.push(Event::update(t, 0, x, y)).unwrap();
        }
        let expected = run_with_kernel(
            small_config(2), ExecStrategy::Sequential, Kernel::Scalar, &mapping, None, &stream,
        );
        for plan in [None, Some(&plan)] {
            let result = run_with_kernel(
                small_config(2), ExecStrategy::Sequential, Kernel::Blocked,
                &mapping, plan, &stream,
            );
            prop_assert_eq!(result, expected.clone());
        }
    }

    /// Stateful streaming: chunked resume on the blocked kernel leaves the
    /// *identical persisted state* (membranes, pending leaks, dirty flags)
    /// as the scalar kernel, for any cut point and strategy. The membrane
    /// bound decides fire-scan walk elision, so an inexact blocked span max
    /// would diverge here.
    #[test]
    fn chunked_resume_persists_identical_state_across_kernels(
        cut in 1u32..12,
        out_channels in 4u16..9,
        threshold in 2i16..7,
        spikes in prop::collection::vec(
            (0u32..12, 0u16..4, 0u16..4),
            40..140,
        ),
        weight_seed in 0u64..1000,
    ) {
        let mapping = conv_mapping(
            1, 4, 4, out_channels, 3, weight_seed,
            LifHardwareParams { leak: 1, threshold },
        );
        let plan = LayerPlan::build(&mapping);
        let mut stream = EventStream::new(4, 4, 1, 12);
        for (t, x, y) in spikes {
            stream.push(Event::update(t, 0, x, y)).unwrap();
        }
        // Scalar oracle: the same chunk cuts, stateful planned resume.
        let mut oracle_engine = Engine::new(small_config(2));
        oracle_engine.set_kernel(Kernel::Scalar);
        let mut oracle_state = LayerState::new(&small_config(2), &mapping);
        let mut expected_events = Vec::new();
        let mut expected_stats = Vec::new();
        for (i, (start, end)) in [(0, cut), (cut, 12)].into_iter().enumerate() {
            let chunk = stream.window(start, end);
            let run = oracle_engine
                .run_layer_stateful_planned(&mapping, &plan, &chunk, &mut oracle_state, i > 0)
                .unwrap();
            expected_stats.push(run.stats);
            expected_events.extend(run.output.into_events().into_iter().map(|e| Event {
                t: e.t + start,
                ..e
            }));
        }

        for exec in STRATEGIES {
            let mut chunked = Engine::with_exec(small_config(2), exec);
            chunked.set_kernel(Kernel::Blocked);
            let mut state = LayerState::new(&small_config(2), &mapping);
            let mut events = Vec::new();
            for (i, (start, end)) in [(0, cut), (cut, 12)].into_iter().enumerate() {
                let chunk = stream.window(start, end);
                let run = chunked
                    .run_layer_stateful_planned(&mapping, &plan, &chunk, &mut state, i > 0)
                    .unwrap();
                prop_assert_eq!(run.stats, expected_stats[i]);
                events.extend(run.output.into_events().into_iter().map(|e| Event {
                    t: e.t + start,
                    ..e
                }));
            }
            prop_assert_eq!(&events[..], &expected_events[..]);
            prop_assert_eq!(&state, &oracle_state);
        }
    }
}

/// Trace level: the cycle-level execution trace — pass starts, event
/// dispatches, fire scans, TLU skips — is record-for-record identical on
/// both kernels (the blocked kernel may not change *when* anything happens,
/// only how fast the host computes it).
#[test]
fn execution_traces_are_identical_across_kernels() {
    let mapping = conv_mapping(
        2,
        6,
        6,
        4,
        3,
        17,
        LifHardwareParams {
            leak: 1,
            threshold: 3,
        },
    );
    let plan = LayerPlan::build(&mapping);
    let mut stream = EventStream::new(6, 6, 2, 8);
    for i in 0u64..60 {
        let t = (i % 8) as u32;
        let ch = ((i / 8) % 2) as u16;
        let x = ((i * 5) % 6) as u16;
        let y = ((i * 11) % 6) as u16;
        stream.push(Event::update(t, ch, x, y)).unwrap();
    }
    let mut traces = Vec::new();
    for kernel in [Kernel::Scalar, Kernel::Blocked] {
        let mut engine = Engine::new(small_config(3));
        engine.set_kernel(kernel);
        engine.enable_trace(4096);
        let _ = engine.run_layer_planned(&mapping, &plan, &stream).unwrap();
        traces.push(engine.trace().clone());
    }
    assert_eq!(traces[0], traces[1]);
    assert!(!traces[0].records().is_empty());
}

/// Session level: the full Fig. 6 network gives the identical
/// [`InferenceResult`] — prediction, spike counts, statistics, **energy**
/// and timing — on the blocked and the scalar kernel, whole-sample and
/// chunked, against the naive-datapath oracle.
#[test]
fn session_results_agree_across_kernels_on_the_fig6_network() {
    use sne::compile::CompiledNetwork;
    use sne::session::InferenceSession;
    use sne_model::topology::Topology;
    use sne_model::Shape;

    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let network =
        CompiledNetwork::random(&Topology::paper_fig6(Shape::new(2, 16, 16), 11), &mut rng)
            .unwrap();
    let stream = sne::proportionality::stream_with_activity((2, 16, 16), 8, 0.05, 17);

    let mut oracle = InferenceSession::new(network.clone(), SneConfig::with_slices(8)).unwrap();
    oracle.set_kernel(Kernel::Scalar);
    oracle.set_plan_enabled(false);
    let expected = oracle.infer(&stream).unwrap();

    for kernel in [Kernel::Scalar, Kernel::Blocked] {
        let mut session =
            InferenceSession::new(network.clone(), SneConfig::with_slices(8)).unwrap();
        session.set_kernel(kernel);
        assert_eq!(session.kernel(), kernel);
        assert_eq!(
            session.infer(&stream).unwrap(),
            expected,
            "kernel {kernel:?}"
        );

        // Chunked streaming matches the whole run spike for spike.
        session.reset();
        let mut spikes = 0;
        for chunk in stream.chunks(3) {
            spikes += session.push(&chunk).unwrap().output.spike_count();
        }
        assert_eq!(
            spikes as u32,
            expected.output_spike_counts.iter().sum::<u32>(),
            "kernel {kernel:?}"
        );
    }
}

//! Reactor-specific serving suite: HTTP/1.1 keep-alive semantics,
//! slow-loris eviction, admission-control shedding, request-id
//! propagation, health/route observability and shutdown with parked
//! connections — everything the nonblocking core added on top of the
//! bit-exactness contract `serve_end_to_end.rs` already pins down.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sne::compile::CompiledNetwork;
use sne::session::InferenceSession;
use sne_event::EventStream;
use sne_model::topology::Topology;
use sne_model::Shape;
use sne_serve::client::{self, Connection};
use sne_serve::{Json, ServerBuilder};
use sne_sim::{ExecStrategy, SneConfig};

fn compiled(seed: u64) -> CompiledNetwork {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
    CompiledNetwork::random(&Topology::tiny(Shape::new(2, 8, 8), 4, 3), &mut rng).unwrap()
}

fn sample(seed: u64) -> EventStream {
    sne::proportionality::stream_with_activity((2, 8, 8), 16, 0.05, seed)
}

fn tiny_server(lanes: usize) -> sne_serve::Server {
    ServerBuilder::new()
        .register(
            "tiny",
            compiled(11),
            SneConfig::with_slices(2),
            lanes,
            ExecStrategy::Sequential,
        )
        .unwrap()
        .start("127.0.0.1:0")
        .unwrap()
}

#[test]
fn keep_alive_connection_serves_sequential_requests_bit_exactly() {
    let network = Arc::new(compiled(11));
    let server = ServerBuilder::new()
        .register(
            "tiny",
            Arc::clone(&network),
            SneConfig::with_slices(2),
            2,
            ExecStrategy::Sequential,
        )
        .unwrap()
        .start("127.0.0.1:0")
        .unwrap();
    let mut session =
        InferenceSession::new(Arc::clone(&network), SneConfig::with_slices(2)).unwrap();

    // Many requests over ONE socket; the server must frame each response
    // and park the connection between them.
    let mut conn = Connection::connect(server.addr()).unwrap();
    for i in 0..6 {
        let stream = sample(200 + i);
        let expected = session.infer(&stream).unwrap();
        let (status, body) = conn
            .post("/v1/infer", &client::infer_body("tiny", &stream))
            .unwrap();
        assert_eq!(status, 200, "{body}");
        let doc = Json::parse(&body).unwrap();
        assert_eq!(
            doc.get("predicted_class").and_then(Json::as_u64),
            Some(expected.predicted_class as u64)
        );
        assert_eq!(
            doc.get("energy_uj")
                .and_then(Json::as_f64)
                .map(f64::to_bits),
            Some(expected.energy.energy_uj.to_bits()),
        );
        // Every response carries a request id, echoed in the body too.
        let header_id = conn.header("x-request-id").unwrap().to_owned();
        assert_eq!(
            doc.get("request_id").and_then(Json::as_str),
            Some(header_id.as_str())
        );
    }
    // The whole exchange used exactly one connection.
    assert_eq!(server.open_connections(), 1);
    server.shutdown();
}

#[test]
fn client_request_ids_are_echoed_verbatim() {
    let server = tiny_server(1);
    let mut conn = Connection::connect(server.addr()).unwrap();
    let body = client::infer_body("tiny", &sample(1));
    let (status, response) = conn
        .request_with_headers("POST", "/v1/infer", &body, &[("X-Request-Id", "trace-42")])
        .unwrap();
    assert_eq!(status, 200, "{response}");
    assert_eq!(conn.header("x-request-id"), Some("trace-42"));
    let doc = Json::parse(&response).unwrap();
    assert_eq!(
        doc.get("request_id").and_then(Json::as_str),
        Some("trace-42")
    );

    // Inline routes carry one as well (generated when the client sent none).
    let (status, _) = conn.get("/healthz").unwrap();
    assert_eq!(status, 200);
    assert!(conn.header("x-request-id").unwrap().starts_with("sne-"));
    server.shutdown();
}

#[test]
fn connection_close_is_honored() {
    let server = tiny_server(1);
    let mut conn = Connection::connect(server.addr()).unwrap();
    let body = client::infer_body("tiny", &sample(2));
    let (status, _) = conn
        .request_with_headers("POST", "/v1/infer", &body, &[("Connection", "close")])
        .unwrap();
    assert_eq!(status, 200);
    assert_eq!(conn.header("connection"), Some("close"));
    // The server must close its side: the next request cannot be answered.
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let followup = conn.post("/v1/infer", &body);
    assert!(
        followup.is_err(),
        "server kept a Connection: close socket open"
    );
    server.shutdown();
}

#[test]
fn pipelined_requests_are_rejected() {
    let server = tiny_server(1);
    let body = client::infer_body("tiny", &sample(3));
    let one = format!(
        "POST /v1/infer HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    // Two complete requests in one burst: the server serves strictly
    // one-at-a-time per connection and must reject the pipeline.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.write_all(format!("{one}{one}").as_bytes()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(
        response.starts_with("HTTP/1.1 400"),
        "expected 400, got: {response}"
    );
    assert!(response.contains("pipelined"), "{response}");
    // Exactly one response, then close — the second request was never served.
    assert_eq!(response.matches("HTTP/1.1").count(), 1, "{response}");
    server.shutdown();
}

#[test]
fn slow_loris_is_evicted_while_fast_client_is_unaffected() {
    let server = ServerBuilder::new()
        .register(
            "tiny",
            compiled(11),
            SneConfig::with_slices(2),
            2,
            ExecStrategy::Sequential,
        )
        .unwrap()
        .read_deadline(Duration::from_millis(150))
        .start("127.0.0.1:0")
        .unwrap();
    let addr = server.addr();

    // The slow client drips one byte at a time and never finishes its
    // request inside the 150ms read deadline.
    let slow = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let started = Instant::now();
        for byte in b"POST /v1/infer HTTP/1.1\r\n" {
            if stream.write_all(std::slice::from_ref(byte)).is_err() {
                break; // evicted mid-drip: also a pass
            }
            std::thread::sleep(Duration::from_millis(40));
        }
        let mut response = String::new();
        let _ = stream.read_to_string(&mut response);
        (started.elapsed(), response)
    });

    // Meanwhile fast clients on the same reactor are served normally.
    for i in 0..5 {
        let (status, body) = client::post(
            addr,
            "/v1/infer",
            &client::infer_body("tiny", &sample(20 + i)),
        )
        .unwrap();
        assert_eq!(status, 200, "{body}");
        std::thread::sleep(Duration::from_millis(50));
    }

    let (elapsed, response) = slow.join().unwrap();
    // Evicted (EOF or best-effort 408) well before the drip would have
    // finished (25 bytes x 40ms = 1s just for the request line).
    assert!(
        elapsed < Duration::from_secs(5),
        "slow client was not evicted ({elapsed:?})"
    );
    assert!(
        response.is_empty() || response.contains("408"),
        "unexpected eviction response: {response}"
    );
    let (status, stats) = client::get(addr, "/v1/stats").unwrap();
    assert_eq!(status, 200);
    let doc = Json::parse(&stats).unwrap();
    assert!(doc.get("evictions").and_then(Json::as_u64).unwrap() >= 1);
    server.shutdown();
}

#[test]
fn mid_stream_disconnect_frees_the_session_slot() {
    let network = Arc::new(compiled(11));
    let server = ServerBuilder::new()
        .register(
            "tiny",
            Arc::clone(&network),
            SneConfig::with_slices(2),
            2,
            ExecStrategy::Sequential,
        )
        .unwrap()
        .start("127.0.0.1:0")
        .unwrap();
    let addr = server.addr();
    let feed = sample(70);
    let chunks: Vec<EventStream> = feed.chunks(4).collect();
    let mut reference =
        InferenceSession::new(Arc::clone(&network), SneConfig::with_slices(2)).unwrap();

    // Chunk 0 over a normal exchange.
    let (status, body) = client::post(
        addr,
        "/v1/stream/dvs-0/push",
        &client::infer_body("tiny", &chunks[0]),
    )
    .unwrap();
    assert_eq!(status, 200, "{body}");
    reference.push(&chunks[0]).unwrap();

    // Chunk 1: send the full request, then vanish without reading the
    // response. The push still executes; the worker callback must re-park
    // the advanced session state even though the connection died.
    {
        let push_body = client::infer_body("tiny", &chunks[1]);
        let raw = format!(
            "POST /v1/stream/dvs-0/push HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{push_body}",
            push_body.len()
        );
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        // drop: mid-stream disconnect
    }
    reference.push(&chunks[1]).unwrap();

    // The session must come back (409 only transiently while the orphaned
    // push is in flight), with its state advanced by the orphaned chunk.
    let deadline = Instant::now() + Duration::from_secs(10);
    let push_body = client::infer_body("tiny", &chunks[2]);
    let expected = reference.push(&chunks[2]).unwrap();
    loop {
        let (status, body) = client::post(addr, "/v1/stream/dvs-0/push", &push_body).unwrap();
        if status == 409 {
            assert!(Instant::now() < deadline, "session never freed: {body}");
            std::thread::sleep(Duration::from_millis(10));
            continue;
        }
        assert_eq!(status, 200, "{body}");
        let doc = Json::parse(&body).unwrap();
        assert_eq!(
            doc.get("start_timestep").and_then(Json::as_u64),
            Some(u64::from(expected.start_timestep)),
            "orphaned chunk was lost or double-applied"
        );
        assert_eq!(
            doc.get("total_cycles").and_then(Json::as_u64),
            Some(expected.stats.total_cycles)
        );
        assert_eq!(doc.get("chunks_pushed").and_then(Json::as_u64), Some(3));
        break;
    }
    assert_eq!(server.active_streams(), 1);

    // And the summary is still bit-identical to the dedicated session's.
    let (status, closed) = client::post(addr, "/v1/stream/dvs-0/close", "").unwrap();
    assert_eq!(status, 200, "{closed}");
    let doc = Json::parse(&closed).unwrap();
    let expected = reference.summary();
    assert_eq!(
        doc.get("predicted_class").and_then(Json::as_u64),
        Some(expected.predicted_class as u64)
    );
    assert_eq!(
        doc.get("energy_uj")
            .and_then(Json::as_f64)
            .map(f64::to_bits),
        Some(expected.energy.energy_uj.to_bits())
    );
    server.shutdown();
}

#[test]
fn admission_limit_sheds_with_retry_after() {
    let server = ServerBuilder::new()
        .register(
            "tiny",
            compiled(11),
            SneConfig::with_slices(2),
            1,
            ExecStrategy::Sequential,
        )
        .unwrap()
        .admission_limit(1)
        .retry_after_secs(2)
        .start("127.0.0.1:0")
        .unwrap();
    let addr = server.addr();
    // A beefy request so in-flight windows overlap reliably.
    let stream = sne::proportionality::stream_with_activity((2, 8, 8), 256, 0.1, 7);
    let body = client::infer_body("tiny", &stream);

    let barrier = std::sync::Barrier::new(8);
    let outcomes: Vec<(u16, Option<String>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                scope.spawn(|| {
                    let mut conn = Connection::connect(addr).unwrap();
                    barrier.wait();
                    let (status, _) = conn.post("/v1/infer", &body).unwrap();
                    (status, conn.header("retry-after").map(str::to_owned))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let served = outcomes.iter().filter(|(s, _)| *s == 200).count();
    let shed = outcomes.iter().filter(|(s, _)| *s == 429).count();
    assert_eq!(served + shed, 8, "{outcomes:?}");
    assert!(served >= 1, "{outcomes:?}");
    assert!(shed >= 1, "admission limit 1 never shed: {outcomes:?}");
    for (status, retry_after) in &outcomes {
        if *status == 429 {
            assert_eq!(retry_after.as_deref(), Some("2"));
        }
    }

    // The shed counter is visible in stats.
    let (_, stats) = client::get(addr, "/v1/stats").unwrap();
    let doc = Json::parse(&stats).unwrap();
    let tiny = doc.get("models").unwrap().get("tiny").unwrap();
    assert_eq!(tiny.get("shed").and_then(Json::as_u64), Some(shed as u64));
    server.shutdown();
}

#[test]
fn healthz_and_per_route_counters() {
    let server = tiny_server(1);
    let addr = server.addr();
    let (status, body) = client::get(addr, "/healthz").unwrap();
    assert_eq!(status, 200);
    let doc = Json::parse(&body).unwrap();
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(doc.get("models").and_then(Json::as_u64), Some(1));

    let (status, _) =
        client::post(addr, "/v1/infer", &client::infer_body("tiny", &sample(5))).unwrap();
    assert_eq!(status, 200);
    let (status, _) = client::post(addr, "/v1/infer", "{not json").unwrap();
    assert_eq!(status, 400);
    let (status, _) = client::get(addr, "/v1/nope").unwrap();
    assert_eq!(status, 404);

    let (_, stats) = client::get(addr, "/v1/stats").unwrap();
    let doc = Json::parse(&stats).unwrap();
    let routes = doc.get("routes").unwrap();
    let infer = routes.get("infer").unwrap();
    assert_eq!(infer.get("requests").and_then(Json::as_u64), Some(2));
    assert_eq!(infer.get("errors").and_then(Json::as_u64), Some(1));
    assert_eq!(
        routes
            .get("healthz")
            .unwrap()
            .get("requests")
            .and_then(Json::as_u64),
        Some(1)
    );
    assert_eq!(
        routes
            .get("other")
            .unwrap()
            .get("errors")
            .and_then(Json::as_u64),
        Some(1)
    );
    // The recent-request ring ties request ids to their outcomes.
    let recent = doc.get("recent_requests").and_then(Json::as_array).unwrap();
    assert!(recent.len() >= 4);
    assert!(recent
        .iter()
        .all(|r| r.get("id").and_then(Json::as_str).is_some()));
    server.shutdown();
}

// -- multi-shard suite ------------------------------------------------------
//
// The sharded reactor must be observationally identical to the single-shard
// one: connections spread across shards, but every response stays bit-exact
// vs a direct session, streaming sessions survive on their shard, and
// shutdown/eviction semantics hold per shard.

fn sharded_server(network: &Arc<CompiledNetwork>, shards: usize) -> sne_serve::Server {
    ServerBuilder::new()
        .register(
            "tiny",
            Arc::clone(network),
            SneConfig::with_slices(2),
            2,
            ExecStrategy::Sequential,
        )
        .unwrap()
        .reactor_shards(shards)
        .start("127.0.0.1:0")
        .unwrap()
}

#[test]
fn multi_shard_distributes_connections_and_serves_bit_exactly() {
    let network = Arc::new(compiled(11));
    let server = sharded_server(&network, 2);
    assert_eq!(server.reactor_shards(), 2);
    let mut session =
        InferenceSession::new(Arc::clone(&network), SneConfig::with_slices(2)).unwrap();

    // Four concurrently open keep-alive connections: least-loaded placement
    // must spread them over both shards, and every response must still be
    // bit-identical to the direct session no matter which shard served it.
    let mut conns: Vec<Connection> = (0..4)
        .map(|_| Connection::connect(server.addr()).unwrap())
        .collect();
    for round in 0..3 {
        for (c, conn) in conns.iter_mut().enumerate() {
            let stream = sample(500 + round * 10 + c as u64);
            let expected = session.infer(&stream).unwrap();
            let (status, body) = conn
                .post("/v1/infer", &client::infer_body("tiny", &stream))
                .unwrap();
            assert_eq!(status, 200, "{body}");
            let doc = Json::parse(&body).unwrap();
            assert_eq!(
                doc.get("predicted_class").and_then(Json::as_u64),
                Some(expected.predicted_class as u64)
            );
            assert_eq!(
                doc.get("total_cycles").and_then(Json::as_u64),
                Some(expected.stats.total_cycles)
            );
            assert_eq!(
                doc.get("energy_uj")
                    .and_then(Json::as_f64)
                    .map(f64::to_bits),
                Some(expected.energy.energy_uj.to_bits()),
            );
        }
    }
    assert_eq!(server.open_connections(), 4);

    let (status, stats) = client::get(server.addr(), "/v1/stats").unwrap();
    assert_eq!(status, 200);
    let doc = Json::parse(&stats).unwrap();
    let shards = doc.get("shards").and_then(Json::as_array).unwrap();
    assert_eq!(shards.len(), 2);
    for shard in shards {
        assert!(
            shard.get("accepted").and_then(Json::as_u64).unwrap() >= 1,
            "a shard never got a connection: {stats}"
        );
    }
    let open: u64 = shards
        .iter()
        .map(|s| s.get("open").and_then(Json::as_u64).unwrap())
        .sum();
    // The 4 parked keep-alive connections plus the stats connection itself.
    assert_eq!(open, 5, "{stats}");
    server.shutdown();
}

#[test]
fn multi_shard_streaming_sessions_stay_shard_sticky_and_bit_exact() {
    let network = Arc::new(compiled(11));
    let server = sharded_server(&network, 2);
    // Two concurrent keep-alive connections: placed on different shards,
    // each driving its own streaming session. Chunk state must survive
    // between pushes on whichever shard owns the connection, and the final
    // summaries must be bit-identical to dedicated reference sessions.
    let mut conn_a = Connection::connect(server.addr()).unwrap();
    let mut conn_b = Connection::connect(server.addr()).unwrap();
    let mut ref_a = InferenceSession::new(Arc::clone(&network), SneConfig::with_slices(2)).unwrap();
    let mut ref_b = InferenceSession::new(Arc::clone(&network), SneConfig::with_slices(2)).unwrap();
    let chunks_a: Vec<EventStream> = sample(71).chunks(4).collect();
    let chunks_b: Vec<EventStream> = sample(72).chunks(4).collect();

    for (chunk_a, chunk_b) in chunks_a.iter().zip(&chunks_b) {
        let expected = ref_a.push(chunk_a).unwrap();
        let (status, body) = conn_a
            .post(
                "/v1/stream/shard-a/push",
                &client::infer_body("tiny", chunk_a),
            )
            .unwrap();
        assert_eq!(status, 200, "{body}");
        let doc = Json::parse(&body).unwrap();
        assert_eq!(
            doc.get("total_cycles").and_then(Json::as_u64),
            Some(expected.stats.total_cycles)
        );

        let expected = ref_b.push(chunk_b).unwrap();
        let (status, body) = conn_b
            .post(
                "/v1/stream/shard-b/push",
                &client::infer_body("tiny", chunk_b),
            )
            .unwrap();
        assert_eq!(status, 200, "{body}");
        let doc = Json::parse(&body).unwrap();
        assert_eq!(
            doc.get("total_cycles").and_then(Json::as_u64),
            Some(expected.stats.total_cycles)
        );
    }

    for (conn, session_path, reference) in [
        (&mut conn_a, "/v1/stream/shard-a/close", &ref_a),
        (&mut conn_b, "/v1/stream/shard-b/close", &ref_b),
    ] {
        let (status, body) = conn.post(session_path, "").unwrap();
        assert_eq!(status, 200, "{body}");
        let doc = Json::parse(&body).unwrap();
        let expected = reference.summary();
        assert_eq!(
            doc.get("predicted_class").and_then(Json::as_u64),
            Some(expected.predicted_class as u64)
        );
        assert_eq!(
            doc.get("energy_uj")
                .and_then(Json::as_f64)
                .map(f64::to_bits),
            Some(expected.energy.energy_uj.to_bits())
        );
    }
    server.shutdown();
}

#[test]
fn multi_shard_graceful_shutdown_joins_every_shard() {
    let network = Arc::new(compiled(11));
    let server = sharded_server(&network, 2);
    let addr = server.addr();
    // Park keep-alive connections on both shards (least-loaded placement
    // alternates while all stay open).
    let mut parked: Vec<Connection> = (0..6)
        .map(|i| {
            let mut conn = Connection::connect(addr).unwrap();
            let (status, _) = conn
                .post("/v1/infer", &client::infer_body("tiny", &sample(600 + i)))
                .unwrap();
            assert_eq!(status, 200);
            conn
        })
        .collect();
    assert_eq!(server.open_connections(), 6);

    let started = Instant::now();
    server.shutdown(); // must join BOTH reactor threads without timing out
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "shutdown hung on a shard"
    );
    for conn in &mut parked {
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let result = conn.post("/v1/infer", "{}");
        assert!(result.is_err(), "socket survived shutdown");
    }
}

#[test]
fn multi_shard_slow_loris_evicted_on_each_shard() {
    let network = Arc::new(compiled(11));
    let server = ServerBuilder::new()
        .register(
            "tiny",
            Arc::clone(&network),
            SneConfig::with_slices(2),
            2,
            ExecStrategy::Sequential,
        )
        .unwrap()
        .reactor_shards(2)
        .read_deadline(Duration::from_millis(150))
        .start("127.0.0.1:0")
        .unwrap();
    let addr = server.addr();

    // Two concurrent slow connections: placement puts one on each shard, so
    // both timer wheels must fire. Each sends a partial request line (the
    // read deadline arms on the first byte) and then stalls.
    let drips: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .unwrap();
                stream.write_all(b"POST /v1/inf").unwrap();
                let started = Instant::now();
                let mut response = String::new();
                let _ = stream.read_to_string(&mut response);
                (started.elapsed(), response)
            })
        })
        .collect();
    for drip in drips {
        let (elapsed, response) = drip.join().unwrap();
        assert!(
            elapsed < Duration::from_secs(5),
            "slow client was not evicted ({elapsed:?})"
        );
        assert!(
            response.is_empty() || response.contains("408"),
            "unexpected eviction response: {response}"
        );
    }

    let (status, stats) = client::get(addr, "/v1/stats").unwrap();
    assert_eq!(status, 200);
    let doc = Json::parse(&stats).unwrap();
    let shards = doc.get("shards").and_then(Json::as_array).unwrap();
    assert_eq!(shards.len(), 2);
    for shard in shards {
        assert!(
            shard.get("evictions").and_then(Json::as_u64).unwrap() >= 1,
            "a shard's timer wheel never evicted: {stats}"
        );
    }
    server.shutdown();
}

#[test]
fn shutdown_closes_parked_keep_alive_connections() {
    let server = tiny_server(2);
    let addr = server.addr();
    // Park several keep-alive connections (each served one request).
    let mut parked: Vec<Connection> = (0..8)
        .map(|i| {
            let mut conn = Connection::connect(addr).unwrap();
            let (status, _) = conn
                .post("/v1/infer", &client::infer_body("tiny", &sample(300 + i)))
                .unwrap();
            assert_eq!(status, 200);
            conn
        })
        .collect();
    assert_eq!(server.open_connections(), 8);

    let started = Instant::now();
    server.shutdown(); // must not wait out any idle timeout
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "shutdown hung on parked connections"
    );
    // Every parked socket was closed by the server.
    for conn in &mut parked {
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let result = conn.post("/v1/infer", "{}");
        assert!(result.is_err(), "socket survived shutdown");
    }
}

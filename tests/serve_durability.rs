//! Durable-session suite of the `sne_serve` front-end (DESIGN.md §14):
//! with a snapshot store behind the session table, idle sessions must be
//! demoted to disk instead of refused at capacity, a push to a cold
//! session must fault it back in **bit-identically** to one that never
//! left memory, a graceful restart must adopt every parked session, a
//! closed session must be fully reclaimed (no disk leak, no resurrection
//! after restart), corrupt snapshots must cost exactly the one session,
//! and the `chunk_seq` guard must fence duplicate/out-of-order pushes.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use sne::compile::CompiledNetwork;
use sne::session::InferenceSession;
use sne_event::EventStream;
use sne_model::topology::Topology;
use sne_model::Shape;
use sne_serve::{client, FsyncPolicy, Json, Server, ServerBuilder};
use sne_sim::{ExecStrategy, SneConfig};

fn compiled(seed: u64) -> CompiledNetwork {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
    CompiledNetwork::random(&Topology::tiny(Shape::new(2, 8, 8), 4, 3), &mut rng).unwrap()
}

fn sample(seed: u64) -> EventStream {
    sne::proportionality::stream_with_activity((2, 8, 8), 16, 0.05, seed)
}

fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sne-serve-durability-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id(),
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_server(
    network: &Arc<CompiledNetwork>,
    dir: &Path,
    capacity: usize,
) -> sne_serve::Server {
    ServerBuilder::new()
        .register(
            "tiny",
            Arc::clone(network),
            SneConfig::with_slices(2),
            2,
            ExecStrategy::Sequential,
        )
        .unwrap()
        .session_capacity(capacity)
        .durable_store(dir.to_path_buf())
        .fsync_policy(FsyncPolicy::Never)
        .start("127.0.0.1:0")
        .unwrap()
}

/// Pushes one chunk to `session` and returns the parsed response body.
fn push_chunk(addr: SocketAddr, session: &str, chunk: &EventStream) -> Json {
    let body = client::infer_body("tiny", chunk);
    let (status, response) =
        client::post(addr, &format!("/v1/stream/{session}/push"), &body).unwrap();
    assert_eq!(status, 200, "{response}");
    Json::parse(&response).unwrap()
}

/// Spike events of a push/close response as comparable quadruples.
fn response_events(doc: &Json) -> Vec<(u64, u64, u64, u64)> {
    doc.get("events")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|e| {
            let f = e.as_array().unwrap();
            (
                f[0].as_u64().unwrap(),
                f[1].as_u64().unwrap(),
                f[2].as_u64().unwrap(),
                f[3].as_u64().unwrap(),
            )
        })
        .collect()
}

fn stream_events(stream: &EventStream) -> Vec<(u64, u64, u64, u64)> {
    stream
        .iter()
        .filter(|e| e.is_spike())
        .map(|e| {
            (
                u64::from(e.t),
                u64::from(e.ch),
                u64::from(e.x),
                u64::from(e.y),
            )
        })
        .collect()
}

fn snap_files(dir: &PathBuf) -> usize {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .filter(|e| e.path().extension().is_some_and(|x| x == "snap"))
                .count()
        })
        .unwrap_or(0)
}

fn durability(server: &Server) -> sne_serve::DurabilityStats {
    server.durability().expect("durable store configured")
}

#[test]
fn capacity_demotes_lru_sessions_and_pushes_fault_them_back_bit_identically() {
    let network = Arc::new(compiled(41));
    let dir = store_dir("evict");
    let server = durable_server(&network, &dir, 2);
    let addr = server.addr();

    // Reference sessions that never leave memory.
    let mut refs: Vec<InferenceSession> = (0..3)
        .map(|_| InferenceSession::new(Arc::clone(&network), SneConfig::with_slices(2)).unwrap())
        .collect();
    let feeds: Vec<EventStream> = (0..3).map(|i| sample(700 + i)).collect();

    // First chunk of sessions s0 and s1 fills the warm tier (capacity 2);
    // s2's first push demotes the LRU parked session (s0) to disk.
    for (i, feed) in feeds.iter().enumerate() {
        let chunk = feed.chunks(4).next().unwrap();
        let expected = refs[i].push(&chunk).unwrap();
        let doc = push_chunk(addr, &format!("s{i}"), &chunk);
        assert_eq!(response_events(&doc), stream_events(&expected.output));
    }
    assert_eq!(server.active_streams(), 2);
    assert_eq!(server.cold_sessions(), 1);
    let stats = durability(&server);
    assert_eq!(stats.parked_to_disk, 1);
    assert_eq!(stats.faulted_in, 0);
    assert_eq!(stats.cold_sessions, 1);

    // The remaining chunks in rotation: every push to the cold session
    // faults it back in (demoting another), and every response stays
    // bit-identical to the in-memory reference.
    for round in 1..4 {
        for (i, feed) in feeds.iter().enumerate() {
            let chunk = feed.chunks(4).nth(round).unwrap();
            let expected = refs[i].push(&chunk).unwrap();
            let doc = push_chunk(addr, &format!("s{i}"), &chunk);
            assert_eq!(
                response_events(&doc),
                stream_events(&expected.output),
                "session s{i} round {round}"
            );
            assert_eq!(
                doc.get("total_cycles").and_then(Json::as_u64),
                Some(expected.stats.total_cycles)
            );
        }
    }
    let stats = durability(&server);
    assert!(stats.faulted_in > 0, "rotation must have faulted in");
    assert_eq!(stats.corrupt_discarded, 0);
    assert_eq!(server.active_streams() + server.cold_sessions(), 3);

    // Close summaries are bit-identical regardless of which tier the
    // session ended up in.
    for (i, reference) in refs.iter().enumerate() {
        let (status, closed) = client::post(addr, &format!("/v1/stream/s{i}/close"), "").unwrap();
        assert_eq!(status, 200, "{closed}");
        let doc = Json::parse(&closed).unwrap();
        let expected = reference.summary();
        assert_eq!(
            doc.get("predicted_class").and_then(Json::as_u64),
            Some(expected.predicted_class as u64)
        );
        assert_eq!(
            doc.get("total_cycles").and_then(Json::as_u64),
            Some(expected.stats.total_cycles)
        );
        assert_eq!(doc.get("chunks_pushed").and_then(Json::as_u64), Some(4));
    }
    assert_eq!(server.active_streams(), 0);
    assert_eq!(server.cold_sessions(), 0);
    assert_eq!(snap_files(&dir), 0, "closed sessions must not leak disk");

    // The durability block is surfaced in /v1/stats.
    let (status, body) = client::get(addr, "/v1/stats").unwrap();
    assert_eq!(status, 200);
    let doc = Json::parse(&body).unwrap();
    let block = doc.get("durability").expect("durability stats present");
    assert_eq!(
        block.get("parked_to_disk").and_then(Json::as_u64),
        Some(durability(&server).parked_to_disk)
    );
    assert_eq!(block.get("cold_sessions").and_then(Json::as_u64), Some(0));

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_restart_adopts_parked_sessions_and_resumes_bit_identically() {
    let network = Arc::new(compiled(42));
    let dir = store_dir("restart");
    let feed = sample(800);
    let mut reference =
        InferenceSession::new(Arc::clone(&network), SneConfig::with_slices(2)).unwrap();

    // First two chunks against the first server incarnation.
    let first = durable_server(&network, &dir, 8);
    for chunk in feed.chunks(4).take(2) {
        reference.push(&chunk).unwrap();
        push_chunk(first.addr(), "dvs", &chunk);
    }
    assert_eq!(snap_files(&dir), 1);
    first.shutdown();

    // The second incarnation adopts the parked session into the cold tier
    // and the remaining chunks resume bit-identically.
    let second = durable_server(&network, &dir, 8);
    let stats = durability(&second);
    assert_eq!(stats.recovered_on_boot, 1);
    assert_eq!(stats.corrupt_discarded, 0);
    assert_eq!(second.cold_sessions(), 1);
    assert_eq!(second.active_streams(), 0);
    for chunk in feed.chunks(4).skip(2) {
        let expected = reference.push(&chunk).unwrap();
        let doc = push_chunk(second.addr(), "dvs", &chunk);
        assert_eq!(response_events(&doc), stream_events(&expected.output));
        assert_eq!(
            doc.get("total_cycles").and_then(Json::as_u64),
            Some(expected.stats.total_cycles)
        );
    }
    assert_eq!(durability(&second).faulted_in, 1);

    let (status, closed) = client::post(second.addr(), "/v1/stream/dvs/close", "").unwrap();
    assert_eq!(status, 200, "{closed}");
    let doc = Json::parse(&closed).unwrap();
    let summary = reference.summary();
    assert_eq!(
        doc.get("predicted_class").and_then(Json::as_u64),
        Some(summary.predicted_class as u64)
    );
    assert_eq!(
        doc.get("total_cycles").and_then(Json::as_u64),
        Some(summary.stats.total_cycles)
    );

    // Fully reclaimed: a third incarnation recovers nothing.
    second.shutdown();
    assert_eq!(snap_files(&dir), 0);
    let third = durable_server(&network, &dir, 8);
    assert_eq!(durability(&third).recovered_on_boot, 0);
    assert_eq!(third.cold_sessions(), 0);
    let (status, _) = client::post(third.addr(), "/v1/stream/dvs/close", "").unwrap();
    assert_eq!(status, 404, "a closed session must not resurrect");
    third.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_snapshots_cost_exactly_one_session() {
    let network = Arc::new(compiled(43));
    let dir = store_dir("corrupt");
    let feeds = [sample(900), sample(901)];
    let mut reference =
        InferenceSession::new(Arc::clone(&network), SneConfig::with_slices(2)).unwrap();

    let first = durable_server(&network, &dir, 8);
    push_chunk(first.addr(), "keep", &feeds[0].chunks(8).next().unwrap());
    reference.push(&feeds[0].chunks(8).next().unwrap()).unwrap();
    push_chunk(first.addr(), "lose", &feeds[1].chunks(8).next().unwrap());
    first.shutdown();
    assert_eq!(snap_files(&dir), 2);

    // Flip one payload byte of the "lose" snapshot (its file name encodes
    // the session id as hex — find it by decoding).
    let victim = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| {
            p.extension().is_some_and(|x| x == "snap")
                && p.file_stem()
                    .and_then(|s| s.to_str())
                    .is_some_and(|s| s.contains(&hex("lose")))
        })
        .expect("snapshot file for 'lose'");
    let mut bytes = std::fs::read(&victim).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    std::fs::write(&victim, &bytes).unwrap();

    // Recovery adopts the intact session, discards the corrupt one, and
    // the server comes up healthy.
    let second = durable_server(&network, &dir, 8);
    let stats = durability(&second);
    assert_eq!(stats.recovered_on_boot, 1);
    assert_eq!(stats.corrupt_discarded, 1);
    assert_eq!(second.cold_sessions(), 1);
    assert!(!victim.exists(), "corrupt snapshot must be deleted");

    // The intact session resumes bit-identically; the lost one is gone.
    let chunk = feeds[0].chunks(8).nth(1).unwrap();
    let expected = reference.push(&chunk).unwrap();
    let doc = push_chunk(second.addr(), "keep", &chunk);
    assert_eq!(response_events(&doc), stream_events(&expected.output));
    let (status, _) = client::post(second.addr(), "/v1/stream/lose/close", "").unwrap();
    assert_eq!(status, 404);
    let (status, _) = client::get(second.addr(), "/healthz").unwrap();
    assert_eq!(status, 200);
    second.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Mirrors the store's filename encoding (lowercase hex of the id bytes)
/// closely enough to find a session's snapshot file in tests.
fn hex(id: &str) -> String {
    id.bytes().map(|b| format!("{b:02x}")).collect()
}

#[test]
fn chunk_seq_fences_duplicate_and_out_of_order_pushes() {
    let network = Arc::new(compiled(44));
    let dir = store_dir("seq");
    let server = durable_server(&network, &dir, 8);
    let addr = server.addr();
    let feed = sample(950);
    let chunks: Vec<EventStream> = feed.chunks(4).collect();

    let seq_body = |chunk: &EventStream, seq: u64| {
        let body = client::infer_body("tiny", chunk);
        format!("{{\"chunk_seq\":{seq},{}", &body[1..])
    };

    // In-order pushes carrying their sequence number are accepted.
    let (status, body) = client::post(addr, "/v1/stream/s/push", &seq_body(&chunks[0], 0)).unwrap();
    assert_eq!(status, 200, "{body}");
    let (status, body) = client::post(addr, "/v1/stream/s/push", &seq_body(&chunks[1], 1)).unwrap();
    assert_eq!(status, 200, "{body}");

    // A replayed chunk (same seq) conflicts and reports the cursor.
    let (status, body) = client::post(addr, "/v1/stream/s/push", &seq_body(&chunks[1], 1)).unwrap();
    assert_eq!(status, 409, "{body}");
    let doc = Json::parse(&body).unwrap();
    assert_eq!(doc.get("chunks_pushed").and_then(Json::as_u64), Some(2));
    assert_eq!(doc.get("got_chunk_seq").and_then(Json::as_u64), Some(1));

    // A skipped chunk conflicts too; the correct next seq is accepted.
    let (status, _) = client::post(addr, "/v1/stream/s/push", &seq_body(&chunks[3], 3)).unwrap();
    assert_eq!(status, 409);
    let (status, _) = client::post(addr, "/v1/stream/s/push", &seq_body(&chunks[2], 2)).unwrap();
    assert_eq!(status, 200);

    // A fresh session must start at seq 0; a malformed seq is a 400.
    let (status, _) = client::post(addr, "/v1/stream/t/push", &seq_body(&chunks[0], 7)).unwrap();
    assert_eq!(status, 409);
    let body = client::infer_body("tiny", &chunks[0]);
    let bad = format!("{{\"chunk_seq\":\"zero\",{}", &body[1..]);
    let (status, _) = client::post(addr, "/v1/stream/t/push", &bad).unwrap();
    assert_eq!(status, 400);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

//! The dynamic scheduler's contract: checking engines out of a pool per
//! request and serving a work queue with any number of workers must yield
//! **exactly** the results of the legacy statically round-robin-pinned
//! runner — per-stream results in input order (a statement strictly stronger
//! than multiset equality), aggregated stats, modelled makespan and energy,
//! and the same deterministic error choice — for every [`ExecStrategy`].

use proptest::prelude::*;
use sne::batch::{BatchRunner, EnginePool, Scheduler};
use sne::compile::CompiledNetwork;
use sne::session::InferenceSession;
use sne::ExecStrategy;
use sne_event::EventStream;
use sne_model::topology::Topology;
use sne_model::Shape;
use sne_sim::SneConfig;
use std::sync::Arc;

/// The strategies every property is checked against (the sequential runner
/// is always the oracle's driver).
const STRATEGIES: [ExecStrategy; 4] = [
    ExecStrategy::Sequential,
    ExecStrategy::Threaded(2),
    ExecStrategy::Threaded(3),
    ExecStrategy::Threaded(8),
];

fn compiled(seed: u64) -> CompiledNetwork {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
    CompiledNetwork::random(&Topology::tiny(Shape::new(2, 8, 8), 4, 3), &mut rng).unwrap()
}

fn workload(count: usize, seed: u64) -> Vec<EventStream> {
    (0..count)
        .map(|i| {
            sne::proportionality::stream_with_activity(
                (2, 8, 8),
                8,
                0.02 + 0.01 * i as f64,
                seed + i as u64,
            )
        })
        .collect()
}

proptest! {
    /// For any fleet size, stream count and strategy, the dynamic
    /// scheduler's report carries the identical result vector (input order,
    /// hence identical multiset) and identical deterministic aggregates as
    /// the round-robin oracle.
    #[test]
    fn dynamic_scheduler_equals_round_robin_for_every_strategy(
        lanes in 1usize..5,
        num_streams in 0usize..9,
        network_seed in 0u64..12,
        stream_seed in 0u64..1000,
    ) {
        let network = Arc::new(compiled(network_seed));
        let streams = workload(num_streams, stream_seed);
        // The oracle: the statically pinned walk, driven sequentially.
        let mut oracle =
            BatchRunner::new(Arc::clone(&network), SneConfig::with_slices(2), lanes).unwrap();
        let expected = oracle.run_round_robin(&streams).unwrap();
        for exec in STRATEGIES {
            let mut runner = BatchRunner::with_exec(
                Arc::clone(&network),
                SneConfig::with_slices(2),
                lanes,
                exec,
            )
            .unwrap();
            let dynamic = runner.run(&streams).unwrap();
            prop_assert_eq!(&dynamic.results, &expected.results);
            prop_assert_eq!(dynamic.total_stats, expected.total_stats);
            prop_assert_eq!(dynamic.lanes, expected.lanes);
            prop_assert!((dynamic.makespan_ms - expected.makespan_ms).abs() < 1e-12);
            prop_assert!((dynamic.total_energy_uj - expected.total_energy_uj).abs() < 1e-12);
            prop_assert!(
                (dynamic.aggregate_rate - expected.aggregate_rate).abs() < 1e-9
                    || (dynamic.aggregate_rate.is_infinite()
                        && expected.aggregate_rate.is_infinite())
            );
            // And the statically pinned walk on worker threads agrees too.
            let rr = runner.run_round_robin(&streams).unwrap();
            prop_assert_eq!(&rr.results, &expected.results);
        }
    }

    /// Incremental submission (requests arriving one by one, drained at the
    /// end) equals the closed-batch entry point, record ids recover
    /// submission order, and every record's result matches a dedicated
    /// session.
    #[test]
    fn incremental_submit_drain_equals_closed_batch(
        lanes in 1usize..4,
        num_streams in 1usize..7,
        stream_seed in 0u64..1000,
    ) {
        let network = Arc::new(compiled(3));
        let streams = workload(num_streams, stream_seed);
        let mut runner = BatchRunner::with_exec(
            Arc::clone(&network),
            SneConfig::with_slices(2),
            lanes,
            ExecStrategy::threaded(lanes),
        )
        .unwrap();
        let closed = runner.run(&streams).unwrap();

        for stream in &streams {
            let _ = runner.submit(stream.clone());
        }
        let records = runner.drain();
        prop_assert_eq!(records.len(), streams.len());
        let mut session =
            InferenceSession::new(Arc::clone(&network), SneConfig::with_slices(2)).unwrap();
        for ((record, stream), closed_result) in
            records.iter().zip(&streams).zip(&closed.results)
        {
            let result = record.result.as_ref().unwrap();
            prop_assert_eq!(result, closed_result);
            prop_assert_eq!(result, &session.infer(stream).unwrap());
            prop_assert!(record.lane < lanes);
        }
    }

    /// Error choice is deterministic: whatever the strategy or arrival
    /// order, the batch reports the error of the lowest-numbered failing
    /// stream — the same one the round-robin oracle picks.
    #[test]
    fn error_choice_matches_the_round_robin_oracle(
        lanes in 1usize..4,
        bad_a in 0usize..6,
        bad_b in 0usize..6,
    ) {
        let network = Arc::new(compiled(5));
        let mut streams = workload(6, 77);
        streams[bad_a] = EventStream::new(16, 16, 2, 8); // wrong geometry
        streams[bad_b] = EventStream::new(4, 4, 1, 8);
        let mut oracle =
            BatchRunner::new(Arc::clone(&network), SneConfig::with_slices(2), lanes).unwrap();
        let expected = oracle.run_round_robin(&streams).unwrap_err();
        for exec in STRATEGIES {
            let mut runner = BatchRunner::with_exec(
                Arc::clone(&network),
                SneConfig::with_slices(2),
                lanes,
                exec,
            )
            .unwrap();
            prop_assert_eq!(runner.run(&streams).unwrap_err(), expected.clone());
        }
    }
}

/// Requests `call`ed concurrently from many threads (the server's request
/// pattern) produce bit-identical results to dedicated sessions, and the
/// scheduler's recorder counts every one of them.
#[test]
fn concurrent_callers_get_dedicated_session_results() {
    let network = Arc::new(compiled(9));
    let streams = workload(8, 123);
    let pool = Arc::new(
        EnginePool::new(
            Arc::new(
                sne::RuntimeArtifact::new(Arc::clone(&network), SneConfig::with_slices(2)).unwrap(),
            ),
            3,
            ExecStrategy::Sequential,
        )
        .unwrap(),
    );
    let scheduler = Arc::new(Scheduler::new(Arc::clone(&pool), 3));
    let records: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = streams
            .iter()
            .map(|stream| {
                let scheduler = Arc::clone(&scheduler);
                let stream = stream.clone();
                scope.spawn(move || scheduler.call(stream))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut session = InferenceSession::new(network, SneConfig::with_slices(2)).unwrap();
    for (record, stream) in records.iter().zip(&streams) {
        assert_eq!(
            record.result.as_ref().unwrap(),
            &session.infer(stream).unwrap()
        );
    }
    let stats = scheduler.stats();
    assert_eq!(stats.completed, 8);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.service.count, 8);
    assert!(stats.service.max_us >= stats.service.p99_us);
    assert_eq!(pool.idle_lanes(), 3);
}

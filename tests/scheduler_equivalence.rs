//! The dynamic scheduler's contract: checking engines out of a pool per
//! request and serving a work queue with any number of workers must yield
//! **exactly** the results of the legacy statically round-robin-pinned
//! runner — per-stream results in input order (a statement strictly stronger
//! than multiset equality), aggregated stats, modelled makespan and energy,
//! and the same deterministic error choice — for every [`ExecStrategy`].

use proptest::prelude::*;
use sne::batch::{BatchRunner, EnginePool, LatencySummary, Scheduler};
use sne::compile::CompiledNetwork;
use sne::session::InferenceSession;
use sne::ExecStrategy;
use sne_event::EventStream;
use sne_model::topology::Topology;
use sne_model::Shape;
use sne_sim::SneConfig;
use std::sync::Arc;

/// The strategies every property is checked against (the sequential runner
/// is always the oracle's driver).
const STRATEGIES: [ExecStrategy; 4] = [
    ExecStrategy::Sequential,
    ExecStrategy::Threaded(2),
    ExecStrategy::Threaded(3),
    ExecStrategy::Threaded(8),
];

fn compiled(seed: u64) -> CompiledNetwork {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
    CompiledNetwork::random(&Topology::tiny(Shape::new(2, 8, 8), 4, 3), &mut rng).unwrap()
}

fn workload(count: usize, seed: u64) -> Vec<EventStream> {
    (0..count)
        .map(|i| {
            sne::proportionality::stream_with_activity(
                (2, 8, 8),
                8,
                0.02 + 0.01 * i as f64,
                seed + i as u64,
            )
        })
        .collect()
}

proptest! {
    /// For any fleet size, stream count and strategy, the dynamic
    /// scheduler's report carries the identical result vector (input order,
    /// hence identical multiset) and identical deterministic aggregates as
    /// the round-robin oracle.
    #[test]
    fn dynamic_scheduler_equals_round_robin_for_every_strategy(
        lanes in 1usize..5,
        num_streams in 0usize..9,
        network_seed in 0u64..12,
        stream_seed in 0u64..1000,
    ) {
        let network = Arc::new(compiled(network_seed));
        let streams = workload(num_streams, stream_seed);
        // The oracle: the statically pinned walk, driven sequentially.
        let mut oracle =
            BatchRunner::new(Arc::clone(&network), SneConfig::with_slices(2), lanes).unwrap();
        let expected = oracle.run_round_robin(&streams).unwrap();
        for exec in STRATEGIES {
            let mut runner = BatchRunner::with_exec(
                Arc::clone(&network),
                SneConfig::with_slices(2),
                lanes,
                exec,
            )
            .unwrap();
            let dynamic = runner.run(&streams).unwrap();
            prop_assert_eq!(&dynamic.results, &expected.results);
            prop_assert_eq!(dynamic.total_stats, expected.total_stats);
            prop_assert_eq!(dynamic.lanes, expected.lanes);
            prop_assert!((dynamic.makespan_ms - expected.makespan_ms).abs() < 1e-12);
            prop_assert!((dynamic.total_energy_uj - expected.total_energy_uj).abs() < 1e-12);
            prop_assert!(
                (dynamic.aggregate_rate - expected.aggregate_rate).abs() < 1e-9
                    || (dynamic.aggregate_rate.is_infinite()
                        && expected.aggregate_rate.is_infinite())
            );
            // And the statically pinned walk on worker threads agrees too.
            let rr = runner.run_round_robin(&streams).unwrap();
            prop_assert_eq!(&rr.results, &expected.results);
        }
    }

    /// Incremental submission (requests arriving one by one, drained at the
    /// end) equals the closed-batch entry point, record ids recover
    /// submission order, and every record's result matches a dedicated
    /// session.
    #[test]
    fn incremental_submit_drain_equals_closed_batch(
        lanes in 1usize..4,
        num_streams in 1usize..7,
        stream_seed in 0u64..1000,
    ) {
        let network = Arc::new(compiled(3));
        let streams = workload(num_streams, stream_seed);
        let mut runner = BatchRunner::with_exec(
            Arc::clone(&network),
            SneConfig::with_slices(2),
            lanes,
            ExecStrategy::threaded(lanes),
        )
        .unwrap();
        let closed = runner.run(&streams).unwrap();

        for stream in &streams {
            let _ = runner.submit(stream.clone());
        }
        let records = runner.drain();
        prop_assert_eq!(records.len(), streams.len());
        let mut session =
            InferenceSession::new(Arc::clone(&network), SneConfig::with_slices(2)).unwrap();
        for ((record, stream), closed_result) in
            records.iter().zip(&streams).zip(&closed.results)
        {
            let result = record.result.as_ref().unwrap();
            prop_assert_eq!(result, closed_result);
            prop_assert_eq!(result, &session.infer(stream).unwrap());
            prop_assert!(record.lane < lanes);
        }
    }

    /// The fairness/utilization gate: a saturating closed batch on N >= 2
    /// lanes must spread busy-time across every worker-owned lane — the
    /// `[0, 0, 0, 0.981]` collapse of the old FIFO + blocking-checkout
    /// scheduler can never come back silently. Jobs are uniform-cost so the
    /// spread measures the scheduler, not workload variance.
    #[test]
    fn saturating_batches_spread_load_across_worker_lanes(
        lanes in 2usize..5,
        jobs_per_lane in 2usize..4,
        chunk_len in 6u32..13,
        exec_index in 0usize..4,
        stream_seed in 0u64..500,
    ) {
        let exec = STRATEGIES[exec_index];
        let network = Arc::new(compiled(7));
        let count = lanes * jobs_per_lane;
        let streams: Vec<EventStream> = (0..count)
            .map(|i| {
                sne::proportionality::stream_with_activity(
                    (2, 8, 8),
                    chunk_len,
                    0.05,
                    stream_seed + i as u64,
                )
            })
            .collect();
        let mut runner = BatchRunner::with_exec(
            Arc::clone(&network),
            SneConfig::with_slices(2),
            lanes,
            exec,
        )
        .unwrap();
        // Warmup: the first batch pays worker-thread startup in its
        // queue-wait samples; the gates measure the steady-state fleet.
        let _ = runner.run(&streams).unwrap();
        let report = runner.run(&streams).unwrap();
        // The busy-time spread gates assume the worker threads actually run
        // concurrently. A 1-core host serializes them: which worker the
        // kernel schedules first (and for how long) decides the wall-clock
        // busy split, so the spread measures the OS scheduler, not ours.
        // The steal-floor keeps placement fair even there — the per-lane
        // job-count gate below still runs — but the busy-time ratios are
        // only meaningful with real parallelism.
        let single_core = std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get)
            == 1;
        if !single_core {
            // Only a worker-owned lane can be busy at all, so the gate is
            // over the `threads` busiest lanes (threads == owned lanes).
            let mut busy = report.lane_utilization.clone();
            busy.sort_by(|a, b| b.partial_cmp(a).unwrap());
            let owned = &busy[..report.threads];
            let mean = owned.iter().sum::<f64>() / owned.len() as f64;
            let min = owned.iter().copied().fold(f64::INFINITY, f64::min);
            prop_assert!(mean > 0.0);
            prop_assert!(
                min >= 0.25 * mean,
                "lane-utilization collapse: {:?} (threads = {})",
                report.lane_utilization,
                report.threads
            );
            // With one worker per lane the report's own spread stat is the
            // same gate; it must agree with the recomputation.
            if report.threads == report.lanes {
                prop_assert!(report.utilization_spread >= 0.25);
                prop_assert!((report.utilization_spread - min / mean).abs() < 1e-9);
            }
        }
        // Arrivals must wait on the hardware, not the queue. A closed burst
        // cannot show that (every job necessarily waits for the backlog
        // ahead of it — Little's law — and a one-core host serializes the
        // workers on top), so the queue gate runs open-loop: arrivals paced
        // near the measured service rate, the serving steady state. The
        // old FIFO + blocking-checkout scheduler queued ~5x its service
        // p50 here; 2x plus a scheduling-noise floor is the gate.
        let pace = std::time::Duration::from_micros(
            (report.service_latency.p50_us * 1.25).max(50.0) as u64,
        );
        for stream in &streams {
            let _ = runner.submit(stream.clone());
            std::thread::sleep(pace);
        }
        let records = runner.drain();
        prop_assert_eq!(records.len(), streams.len());
        let queue: Vec<f64> = records.iter().map(|r| r.queue_us).collect();
        let service: Vec<f64> = records.iter().map(|r| r.service_us).collect();
        let queue_p50 = LatencySummary::from_samples_us(&queue).p50_us;
        let service_p50 = LatencySummary::from_samples_us(&service).p50_us;
        prop_assert!(
            queue_p50 <= 2.0 * service_p50 + 1500.0,
            "paced arrivals queued on the scheduler: queue p50 {} vs service p50 {}",
            queue_p50,
            service_p50
        );
        // Paced arrivals also reach every worker-owned lane (the rotating
        // placement tiebreak): no lane is starved. The gate counts jobs, not
        // busy-time — wall-clock service on a time-sliced host attributes
        // arbitrarily across interleaved lanes, but a collapsed placement
        // shows up as a zero count regardless of the clock.
        let owned_lanes = runner.scheduler().worker_lanes().to_vec();
        let mut lane_jobs = vec![0usize; lanes];
        for record in &records {
            lane_jobs[record.lane] += 1;
        }
        for &lane in &owned_lanes {
            prop_assert!(
                lane_jobs[lane] >= 1,
                "paced lane starved: {:?} over lanes {:?}",
                lane_jobs,
                owned_lanes
            );
        }
    }

    /// Error choice is deterministic: whatever the strategy or arrival
    /// order, the batch reports the error of the lowest-numbered failing
    /// stream — the same one the round-robin oracle picks.
    #[test]
    fn error_choice_matches_the_round_robin_oracle(
        lanes in 1usize..4,
        bad_a in 0usize..6,
        bad_b in 0usize..6,
    ) {
        let network = Arc::new(compiled(5));
        let mut streams = workload(6, 77);
        streams[bad_a] = EventStream::new(16, 16, 2, 8); // wrong geometry
        streams[bad_b] = EventStream::new(4, 4, 1, 8);
        let mut oracle =
            BatchRunner::new(Arc::clone(&network), SneConfig::with_slices(2), lanes).unwrap();
        let expected = oracle.run_round_robin(&streams).unwrap_err();
        for exec in STRATEGIES {
            let mut runner = BatchRunner::with_exec(
                Arc::clone(&network),
                SneConfig::with_slices(2),
                lanes,
                exec,
            )
            .unwrap();
            prop_assert_eq!(runner.run(&streams).unwrap_err(), expected.clone());
        }
    }
}

/// Requests `call`ed concurrently from many threads (the server's request
/// pattern) produce bit-identical results to dedicated sessions, and the
/// scheduler's recorder counts every one of them.
#[test]
fn concurrent_callers_get_dedicated_session_results() {
    let network = Arc::new(compiled(9));
    let streams = workload(8, 123);
    let pool = Arc::new(
        EnginePool::new(
            Arc::new(
                sne::RuntimeArtifact::new(Arc::clone(&network), SneConfig::with_slices(2)).unwrap(),
            ),
            3,
            ExecStrategy::Sequential,
        )
        .unwrap(),
    );
    let scheduler = Arc::new(Scheduler::new(Arc::clone(&pool), 3));
    let records: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = streams
            .iter()
            .map(|stream| {
                let scheduler = Arc::clone(&scheduler);
                let stream = stream.clone();
                scope.spawn(move || scheduler.call(stream))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut session = InferenceSession::new(network, SneConfig::with_slices(2)).unwrap();
    for (record, stream) in records.iter().zip(&streams) {
        assert_eq!(
            record.result.as_ref().unwrap(),
            &session.infer(stream).unwrap()
        );
    }
    let stats = scheduler.stats();
    assert_eq!(stats.completed, 8);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.service.count, 8);
    assert!(stats.service.max_us >= stats.service.p99_us);
    // Workers own every engine while the scheduler lives; shutdown (via
    // drop) returns them all.
    assert_eq!(pool.idle_lanes(), 0);
    drop(scheduler);
    assert_eq!(pool.idle_lanes(), 3);
}

//! Checks that the calibrated models reproduce the headline numbers of the
//! paper's evaluation (within small tolerances): these are the assertions
//! behind EXPERIMENTS.md.

use sne_energy::comparison::{comparison_table, efficiency_improvement_over};
use sne_energy::voltage::VoltageScaling;
use sne_energy::{AreaModel, EnergyModel, PerformanceModel, PowerModel};
use sne_sim::SneConfig;

#[test]
fn fig4_area_totals_match_the_paper() {
    let model = AreaModel::default();
    let expected = [(1usize, 249.7), (2, 454.7), (4, 862.5), (8, 1680.7)];
    for (slices, total_kge) in expected {
        let total = model.total_kge(&SneConfig::with_slices(slices));
        let relative_error = (total - total_kge).abs() / total_kge;
        assert!(
            relative_error < 0.01,
            "{slices}-slice area {total} kGE vs paper {total_kge} kGE"
        );
    }
}

#[test]
fn fig4_memory_is_the_dominant_component() {
    let model = AreaModel::default();
    for slices in [1, 2, 4, 8] {
        let b = model.breakdown(&SneConfig::with_slices(slices));
        assert!(
            b.memory / b.total() > 0.3,
            "memory should be the largest share"
        );
    }
}

#[test]
fn fig5a_power_scales_with_slices_and_stays_dynamic_dominated() {
    let model = PowerModel::default();
    let powers: Vec<f64> = [1usize, 2, 4, 8]
        .iter()
        .map(|&s| model.peak_total_mw(&SneConfig::with_slices(s)))
        .collect();
    assert!(powers.windows(2).all(|w| w[1] > w[0]));
    assert!(
        (powers[3] - 11.29).abs() < 0.1,
        "8-slice power {} vs paper 11.29 mW",
        powers[3]
    );
    for slices in [1usize, 2, 4, 8] {
        let b = PowerModel::default().breakdown_at_activity(&SneConfig::with_slices(slices), 1.0);
        assert!(b.dynamic() > b.leakage * 5.0);
    }
}

#[test]
fn fig5b_performance_and_energy_match_the_paper() {
    let perf = PerformanceModel::new();
    let energy = EnergyModel::new();
    let expected = [(1usize, 6.4), (2, 12.8), (4, 25.6), (8, 51.2)];
    for (slices, gsops) in expected {
        let config = SneConfig::with_slices(slices);
        assert!((perf.peak_gsops(&config) - gsops).abs() < 1e-9);
    }
    let config = SneConfig::with_slices(8);
    assert!((energy.nominal_energy_per_sop_pj(&config) - 0.221).abs() < 1e-6);
    let efficiency = energy.nominal_efficiency_tsops_w(&config);
    assert!(
        (efficiency - 4.54).abs() < 0.1,
        "efficiency {efficiency} vs paper 4.54 TSOP/s/W"
    );
}

#[test]
fn table1_energy_and_rate_ranges_match_the_paper() {
    let energy = EnergyModel::new();
    let perf = PerformanceModel::new();
    let config = SneConfig::with_slices(8);
    // The paper derives the Table I ranges from the 1.2 %–4.9 % activity:
    // 7.1 ms / 23.12 ms inference time at 400 MHz.
    let best = energy.inference_energy_uj(&config, 7.1);
    let worst = energy.inference_energy_uj(&config, 23.12);
    assert!(
        (best - 80.0).abs() < 2.5,
        "best-case {best} uJ vs paper 80 uJ"
    );
    assert!(
        (worst - 261.0).abs() < 5.0,
        "worst-case {worst} uJ vs paper 261 uJ"
    );

    let best_stats = sne_sim::CycleStats {
        total_cycles: 2_840_000,
        ..Default::default()
    };
    let worst_stats = sne_sim::CycleStats {
        total_cycles: 9_248_000,
        ..Default::default()
    };
    assert!((perf.inference_rate(&config, &best_stats) - 141.0).abs() < 1.0);
    assert!((perf.inference_rate(&config, &worst_stats) - 43.0).abs() < 1.0);
}

#[test]
fn table2_sne_row_and_improvement_match_the_paper() {
    let config = SneConfig::with_slices(8);
    let table = comparison_table(&config);
    let sne = &table[0];
    assert_eq!(sne.neurons, Some(8192));
    assert!((sne.performance_gops.unwrap() - 51.2).abs() < 1e-9);
    assert!((sne.energy_per_sop_pj.unwrap() - 0.221).abs() < 1e-9);
    assert!((sne.neuron_area_um2.unwrap() - 19.9).abs() < 0.5);
    // SNE has the lowest energy per SOP of the whole table.
    for row in &table[1..] {
        if let Some(e) = row.energy_per_sop_pj {
            assert!(sne.energy_per_sop_pj.unwrap() < e);
        }
    }
    let improvement = efficiency_improvement_over(&config, "Tianjic").unwrap();
    assert!(
        (improvement - 3.55).abs() < 0.06,
        "improvement {improvement} vs paper 3.55x"
    );
}

#[test]
fn voltage_extrapolation_matches_section_iv_c() {
    let scaling = VoltageScaling::default();
    let energy = EnergyModel::new();
    let config = SneConfig::with_slices(8);
    let e09 = scaling.scale_energy(energy.nominal_energy_per_sop_pj(&config), 0.9);
    let eff09 = scaling.scale_efficiency(energy.nominal_efficiency_tsops_w(&config), 0.9);
    assert!(
        (e09 - 0.248).abs() < 0.002,
        "0.9 V energy {e09} vs paper 0.248 pJ/SOP"
    );
    assert!(
        (eff09 - 4.03).abs() < 0.06,
        "0.9 V efficiency {eff09} vs paper 4.03 TSOP/s/W"
    );
}

#[test]
fn event_consumption_latency_is_120ns() {
    let config = SneConfig::with_slices(8);
    assert!((config.event_consumption_ns() - 120.0).abs() < 1e-9);
    assert_eq!(config.cycles_per_event, 48);
    assert_eq!(config.total_neurons(), 8192);
}

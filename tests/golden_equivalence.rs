//! Golden-model equivalence: the cycle-approximate simulator must produce
//! bit-identical output events to the functional quantized-LIF model for any
//! layer, input stream and engine configuration.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sne::compile::CompiledNetwork;
use sne::SneAccelerator;
use sne_event::{Event, EventStream, EventTensor};
use sne_model::layer::{ConvLayer, DenseLayer, EventLayer, NeuronConfig};
use sne_model::neuron::LifParams;
use sne_model::topology::Topology;
use sne_model::{Frame, Shape};
use sne_sim::mapping::{LayerMapping, LifHardwareParams, MapShape};
use sne_sim::{Engine, SneConfig};

/// Runs a single conv layer both on the functional model and on the engine
/// and compares the produced output spikes as `(t, c, y, x)` sets.
fn conv_outputs_match(seed: u64, slices: usize, activity: f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let input_shape = Shape::new(2, 6, 6);
    let out_channels = 3u16;
    let kernel = 3u16;
    let leak = rng.gen_range(0..=2) as i16;
    let threshold = rng.gen_range(3..=10) as i16;

    // Random 4-bit weights shared by both implementations.
    let weight_count = usize::from(out_channels) * 2 * 9;
    let weights: Vec<i8> = (0..weight_count).map(|_| rng.gen_range(-4i8..=5)).collect();

    // Functional model.
    let params = LifParams {
        leak,
        threshold,
        ..LifParams::default()
    };
    let mut model_layer =
        ConvLayer::new(input_shape, out_channels, kernel, NeuronConfig::Lif(params)).unwrap();
    model_layer
        .set_weights(weights.iter().map(|&w| f32::from(w)).collect())
        .unwrap();

    // Hardware mapping.
    let mapping = LayerMapping::conv(
        MapShape::new(2, 6, 6),
        out_channels,
        kernel,
        weights,
        LifHardwareParams { leak, threshold },
    )
    .unwrap();

    // Random input stream.
    let timesteps = 12u32;
    let mut stream = EventStream::new(6, 6, 2, timesteps);
    for t in 0..timesteps {
        for c in 0..2 {
            for y in 0..6 {
                for x in 0..6 {
                    if rng.gen::<f64>() < activity {
                        stream.push(Event::update(t, c, x, y)).unwrap();
                    }
                }
            }
        }
    }

    // Model run: process the dense tensor timestep by timestep.
    let tensor = EventTensor::from_stream(&stream);
    let mut model_spikes = std::collections::BTreeSet::new();
    for t in 0..timesteps {
        let mut frame = Frame::zeros(input_shape);
        for c in 0..2 {
            for y in 0..6 {
                for x in 0..6 {
                    if tensor.get(t, c, x, y).unwrap_or(false) {
                        frame.set(c, y, x, true);
                    }
                }
            }
        }
        let out = model_layer.step(&frame);
        for (c, y, x) in out.spikes() {
            model_spikes.insert((t, c, y, x));
        }
    }

    // Engine run.
    let mut engine = Engine::new(SneConfig::with_slices(slices));
    let result = engine.run_layer(&mapping, &stream).unwrap();
    let engine_spikes: std::collections::BTreeSet<(u32, u16, u16, u16)> = result
        .output
        .iter()
        .map(|e| (e.t, e.ch, e.y, e.x))
        .collect();

    assert_eq!(
        model_spikes, engine_spikes,
        "conv outputs diverge for seed {seed}, {slices} slices, activity {activity}"
    );
}

#[test]
fn conv_layer_matches_for_several_seeds_and_slice_counts() {
    for seed in 0..6u64 {
        for &slices in &[1usize, 2, 8] {
            conv_outputs_match(seed, slices, 0.08);
        }
    }
}

#[test]
fn conv_layer_matches_at_high_activity_with_saturation() {
    // High activity drives membranes into the saturation region; both sides
    // must clamp identically.
    for seed in 20..24u64 {
        conv_outputs_match(seed, 2, 0.5);
    }
}

#[test]
fn dense_layer_matches_the_functional_model() {
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let input_shape = Shape::new(2, 3, 3);
        let outputs = 7u16;
        let weights: Vec<i8> = (0..usize::from(outputs) * input_shape.len())
            .map(|_| rng.gen_range(-5i8..=6))
            .collect();
        let threshold = rng.gen_range(2..=12) as i16;

        let params = LifParams {
            leak: 1,
            threshold,
            ..LifParams::default()
        };
        let mut model_layer =
            DenseLayer::new(input_shape, outputs, NeuronConfig::Lif(params)).unwrap();
        model_layer
            .set_weights(weights.iter().map(|&w| f32::from(w)).collect())
            .unwrap();
        let mapping = LayerMapping::dense(
            MapShape::new(2, 3, 3),
            outputs,
            weights,
            LifHardwareParams { leak: 1, threshold },
        )
        .unwrap();

        let timesteps = 10u32;
        let mut stream = EventStream::new(3, 3, 2, timesteps);
        for t in 0..timesteps {
            for c in 0..2u16 {
                for y in 0..3u16 {
                    for x in 0..3u16 {
                        if rng.gen::<f64>() < 0.2 {
                            stream.push(Event::update(t, c, x, y)).unwrap();
                        }
                    }
                }
            }
        }

        let tensor = EventTensor::from_stream(&stream);
        let mut model_spikes = std::collections::BTreeSet::new();
        for t in 0..timesteps {
            let mut frame = Frame::zeros(input_shape);
            for c in 0..2 {
                for y in 0..3 {
                    for x in 0..3 {
                        if tensor.get(t, c, x, y).unwrap_or(false) {
                            frame.set(c, y, x, true);
                        }
                    }
                }
            }
            let out = model_layer.step(&frame);
            for (c, y, x) in out.spikes() {
                model_spikes.insert((t, c, y, x));
            }
        }

        let mut engine = Engine::new(SneConfig::with_slices(1));
        let result = engine.run_layer(&mapping, &stream).unwrap();
        let engine_spikes: std::collections::BTreeSet<(u32, u16, u16, u16)> = result
            .output
            .iter()
            .map(|e| (e.t, e.ch, e.y, e.x))
            .collect();
        assert_eq!(
            model_spikes, engine_spikes,
            "dense outputs diverge for seed {seed}"
        );
    }
}

#[test]
fn whole_network_matches_the_golden_model() {
    // End-to-end: compiled multi-layer network on the accelerator vs the
    // golden functional network rebuilt from the same mappings.
    let mut rng = StdRng::seed_from_u64(77);
    let topology = Topology::tiny(Shape::new(2, 8, 8), 4, 5);
    let network = CompiledNetwork::random(&topology, &mut rng).unwrap();
    let mut golden = network.golden_network().unwrap();
    let mut accelerator = SneAccelerator::new(SneConfig::with_slices(4));

    for seed in 0..5u64 {
        let stream = sne::proportionality::stream_with_activity((2, 8, 8), 20, 0.06, seed);
        let hardware = accelerator.run(&network, &stream).unwrap();
        let reference = golden.run_stream(&stream).unwrap();
        assert_eq!(
            hardware.output_spike_counts, reference.output_spike_counts,
            "network outputs diverge for stream seed {seed}"
        );
        assert_eq!(hardware.predicted_class, reference.predicted_class());
    }
}

#[test]
fn engine_output_is_independent_of_slice_count() {
    // The number of slices changes timing, never functionality.
    let mut rng = StdRng::seed_from_u64(99);
    let topology = Topology::tiny(Shape::new(2, 8, 8), 4, 3);
    let network = CompiledNetwork::random(&topology, &mut rng).unwrap();
    let stream = sne::proportionality::stream_with_activity((2, 8, 8), 16, 0.05, 5);

    let mut reference: Option<Vec<u32>> = None;
    for slices in [1usize, 2, 4, 8] {
        let mut accelerator = SneAccelerator::new(SneConfig::with_slices(slices));
        let result = accelerator.run(&network, &stream).unwrap();
        match &reference {
            None => reference = Some(result.output_spike_counts),
            Some(expected) => assert_eq!(
                expected, &result.output_spike_counts,
                "outputs change with {slices} slices"
            ),
        }
    }
}

//! Affinity is a placement hint, never a correctness constraint — and
//! interactive work cuts ahead of bulk floods without starving them.
//!
//! The neuron state of a streaming session lives in its [`ClientState`],
//! not in any engine, so a chunk served on the affine (warm) engine and a
//! chunk served after a steal or a deliberate migration are bit-identical.
//! These tests pin that invariant down, together with the priority-lane
//! latency contract.

use sne::batch::{BatchRunner, EnginePool, LatencySummary, Scheduler};
use sne::compile::CompiledNetwork;
use sne::session::InferenceSession;
use sne::{ExecStrategy, RuntimeArtifact};
use sne_event::EventStream;
use sne_model::topology::Topology;
use sne_model::Shape;
use sne_sim::SneConfig;
use std::sync::Arc;

fn compiled(seed: u64) -> CompiledNetwork {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
    CompiledNetwork::random(&Topology::tiny(Shape::new(2, 8, 8), 4, 3), &mut rng).unwrap()
}

fn stream(timesteps: u32, seed: u64) -> EventStream {
    sne::proportionality::stream_with_activity((2, 8, 8), timesteps, 0.04, seed)
}

fn fixture(lanes: usize, seed: u64) -> (Arc<RuntimeArtifact>, Arc<EnginePool>, Scheduler) {
    let network = Arc::new(compiled(seed));
    let artifact = Arc::new(RuntimeArtifact::new(network, SneConfig::with_slices(2)).unwrap());
    let pool =
        Arc::new(EnginePool::new(Arc::clone(&artifact), lanes, ExecStrategy::Sequential).unwrap());
    let scheduler = Scheduler::new(Arc::clone(&pool), lanes);
    (artifact, pool, scheduler)
}

/// A streaming chain that follows its previous serving lane stays warm
/// (affinity hits accumulate) and matches a dedicated session bit for bit.
#[test]
fn affine_streaming_chain_is_warm_and_bit_exact() {
    let (artifact, _pool, scheduler) = fixture(3, 1);
    let feed = stream(32, 10);
    let mut reference = InferenceSession::new(
        Arc::clone(artifact.network_arc()),
        SneConfig::with_slices(2),
    )
    .unwrap();
    let mut client = artifact.new_client();
    let mut affinity = None;
    let mut hinted = 0u64;
    for chunk in feed.chunks(4) {
        let record = scheduler.call_push(client, chunk.clone(), affinity);
        client = record.client;
        hinted += u64::from(affinity.is_some());
        affinity = Some(record.lane);
        assert_eq!(
            record.result.as_ref().unwrap(),
            &reference.push(&chunk).unwrap()
        );
    }
    assert_eq!(artifact.summary(&client), reference.summary());
    let stats = scheduler.stats();
    // Every hinted chunk was counted either way; on an idle fleet the hint
    // is honored at least once (typically always).
    assert_eq!(stats.affinity_hits + stats.affinity_misses, hinted);
    assert!(stats.affinity_hits >= 1);
}

/// The same feed with every chunk deliberately migrated (an out-of-range
/// hint falls back to least-loaded placement and is counted as a miss)
/// produces exactly the same outputs: an affinity miss — hence a steal —
/// can never change a result.
#[test]
fn forced_affinity_misses_are_bit_identical_to_the_warm_chain() {
    let (artifact, _pool, scheduler) = fixture(3, 1);
    let feed = stream(32, 10);

    let run_chain = |affinity_for: &dyn Fn(Option<usize>) -> Option<usize>| {
        let mut client = artifact.new_client();
        let mut outputs = Vec::new();
        let mut last_lane = None;
        for chunk in feed.chunks(4) {
            let record = scheduler.call_push(client, chunk, affinity_for(last_lane));
            client = record.client;
            last_lane = Some(record.lane);
            outputs.push(record.result.unwrap());
        }
        (artifact.summary(&client), outputs)
    };

    let (warm_summary, warm_outputs) = run_chain(&|last| last);
    let before = scheduler.stats();
    // Hint a lane that does not exist: placement ignores it, the counter
    // records a miss for every hinted chunk, and the chunk is served by
    // whatever engine is free — the affinity-miss path, deterministically.
    let (cold_summary, cold_outputs) = run_chain(&|_| Some(usize::MAX));
    let after = scheduler.stats();
    assert_eq!(warm_outputs, cold_outputs);
    assert_eq!(warm_summary, cold_summary);
    assert_eq!(
        after.affinity_misses - before.affinity_misses,
        cold_outputs.len() as u64
    );
}

/// Real steal pressure: several clients all pinned to the same lane. The
/// grace expires while that worker grinds through the pile, the peer steals
/// the surplus — and every stolen request still matches its dedicated
/// session exactly.
///
/// The pressure is engineered to be host-speed-independent: a deliberately
/// heavy stream parks the hot worker in service for many times the steal
/// grace, so the light requests pinned behind it are guaranteed to still be
/// queued when the idle peer's grace expires and it comes stealing.
#[test]
fn steals_under_affinity_pressure_stay_bit_exact() {
    let (artifact, pool, scheduler) = fixture(2, 3);
    let scheduler = Arc::new(scheduler);
    let hot_lane = scheduler.worker_lanes()[0];
    // ~milliseconds of service on any host — the backlog behind it outlives
    // the 2 ms steal grace by construction.
    let heavy = sne::proportionality::stream_with_activity((2, 8, 8), 512, 0.3, 77);
    let light: Vec<EventStream> = (0..4).map(|i| stream(8, 60 + i)).collect();
    let mut session = InferenceSession::new(
        Arc::clone(artifact.network_arc()),
        SneConfig::with_slices(2),
    )
    .unwrap();
    let expected_heavy = session.infer(&heavy).unwrap();
    let expected_light: Vec<_> = light.iter().map(|s| session.infer(s).unwrap()).collect();
    std::thread::scope(|scope| {
        let heavy_scheduler = Arc::clone(&scheduler);
        let heavy_stream = heavy.clone();
        let expected_heavy = &expected_heavy;
        scope.spawn(move || {
            let record = heavy_scheduler.call_with_affinity(heavy_stream, Some(hot_lane));
            assert_eq!(record.result.as_ref().unwrap(), expected_heavy);
        });
        // Let the heavy request reach service (its service time dwarfs this
        // sleep many times over, on any host and build profile).
        std::thread::sleep(std::time::Duration::from_millis(1));
        for (stream, expected) in light.iter().zip(&expected_light) {
            let scheduler = Arc::clone(&scheduler);
            let stream = stream.clone();
            scope.spawn(move || {
                // Everyone insists on the hot lane.
                let record = scheduler.call_with_affinity(stream, Some(hot_lane));
                assert_eq!(record.result.as_ref().unwrap(), expected);
            });
        }
    });
    let stats = scheduler.stats();
    assert_eq!(stats.errors, 0);
    // The light requests piled onto the busy worker; the idle peer's grace
    // expired long before the heavy service finished, so it must have
    // stolen part of the pile.
    assert!(
        stats.steals >= 1,
        "no steal relieved the hot lane: {stats:?}"
    );
    drop(scheduler);
    assert_eq!(pool.idle_lanes(), 2);
}

/// The priority lanes: interactive calls issued into a standing bulk flood
/// wait a small fraction of what the flood's own tail waits — and the
/// flood still completes in full (the bypass guard never starves bulk).
#[test]
fn interactive_calls_cut_ahead_of_a_bulk_flood_without_starving_it() {
    let network = Arc::new(compiled(5));
    let mut runner = BatchRunner::with_exec(
        Arc::clone(&network),
        SneConfig::with_slices(2),
        2,
        ExecStrategy::threaded(2),
    )
    .unwrap();
    let flood: Vec<EventStream> = (0..24).map(|i| stream(8, 300 + i)).collect();
    let probe = stream(8, 999);
    let mut session =
        InferenceSession::new(Arc::clone(&network), SneConfig::with_slices(2)).unwrap();
    let expected_probe = session.infer(&probe).unwrap();

    for burst in &flood {
        let _ = runner.submit(burst.clone());
    }
    // Interactive probes while the flood is pending.
    let mut probe_queue_us = Vec::new();
    for _ in 0..4 {
        let record = runner.scheduler().call(probe.clone());
        assert_eq!(record.result.as_ref().unwrap(), &expected_probe);
        probe_queue_us.push(record.queue_us);
    }
    let records = runner.drain();
    // Bulk progressed to completion: nothing lost, nothing starved.
    assert_eq!(records.len(), flood.len());
    assert!(records.iter().all(|r| r.result.is_ok()));
    let bulk_queue: Vec<f64> = records.iter().map(|r| r.queue_us).collect();
    let bulk_p50 = LatencySummary::from_samples_us(&bulk_queue).p50_us;
    let probe_p50 = LatencySummary::from_samples_us(&probe_queue_us).p50_us;
    // The flood's median job waits behind ~half the flood; an interactive
    // probe waits at most a couple of in-flight services. Half the bulk
    // median is a loose, timing-noise-proof bound.
    assert!(
        probe_p50 <= bulk_p50 / 2.0 + 1000.0,
        "interactive p50 {probe_p50} vs bulk p50 {bulk_p50}"
    );
}

//! Equivalence suite of the compiled sparse datapath: the precompiled
//! [`LayerPlan`] tables must reproduce the naive [`LayerMapping`] walk
//! **bit-exactly** — contribution lists (order included), engine outputs,
//! cycle statistics and per-timestep profiles — over random conv/dense
//! geometries, border events, multi-pass layers, stateful chunked resume and
//! every [`ExecStrategy`]. The naive path is the reference oracle; the plan
//! is only allowed to move host wall-clock time.

use proptest::prelude::*;
use sne_event::{Event, EventStream};
use sne_sim::mapping::{LayerMapping, LifHardwareParams, MapShape};
use sne_sim::plan::LayerPlan;
use sne_sim::{Engine, ExecStrategy, LayerState, SneConfig};

/// Every execution strategy the engine supports, sequential first.
const STRATEGIES: [ExecStrategy; 4] = [
    ExecStrategy::Sequential,
    ExecStrategy::Threaded(2),
    ExecStrategy::Threaded(3),
    ExecStrategy::Threaded(8),
];

fn small_config(num_slices: usize) -> SneConfig {
    SneConfig {
        num_slices,
        clusters_per_slice: 4,
        neurons_per_cluster: 8,
        ..SneConfig::default()
    }
}

fn conv_mapping(
    in_channels: u16,
    height: u16,
    width: u16,
    out_channels: u16,
    kernel: u16,
    weight_seed: u64,
    params: LifHardwareParams,
) -> LayerMapping {
    let count = usize::from(out_channels)
        * usize::from(in_channels)
        * usize::from(kernel)
        * usize::from(kernel);
    let weights: Vec<i8> = (0..count as u64)
        .map(|i| ((i.wrapping_mul(weight_seed.wrapping_add(13)) % 15) as i8) - 7)
        .collect();
    LayerMapping::conv(
        MapShape::new(in_channels, height, width),
        out_channels,
        kernel,
        weights,
        params,
    )
    .unwrap()
}

fn dense_mapping(
    input: MapShape,
    outputs: u16,
    weight_seed: u64,
    params: LifHardwareParams,
) -> LayerMapping {
    let count = usize::from(outputs) * input.len();
    let weights: Vec<i8> = (0..count as u64)
        .map(|i| ((i.wrapping_mul(weight_seed.wrapping_add(29)) % 15) as i8) - 7)
        .collect();
    LayerMapping::dense(input, outputs, weights, params).unwrap()
}

proptest! {
    /// Table level: for any conv geometry (including kernels wider than the
    /// feature map, so every position is a border position), any event
    /// position and any slice range, the plan emits the identical
    /// contribution list — neuron indices, weights *and order*.
    #[test]
    fn plan_contributions_match_the_naive_walk(
        in_channels in 1u16..4,
        height in 2u16..8,
        width in 2u16..8,
        out_channels in 1u16..9,
        kernel_index in 0usize..3,
        weight_seed in 0u64..1000,
        event_seed in 0u64..1000,
        range_lo in 0usize..64,
        range_len in 0usize..96,
    ) {
        let kernel = [1u16, 3, 5][kernel_index];
        let mapping = conv_mapping(
            in_channels, height, width, out_channels, kernel, weight_seed,
            LifHardwareParams::default(),
        );
        let plan = LayerPlan::build(&mapping);
        prop_assert!(plan.matches(&mapping));
        let range = range_lo..(range_lo + range_len);
        // A pseudo-random event position plus the four corners (the extreme
        // border classes) every single case.
        let e = event_seed;
        let positions = [
            ((e % u64::from(in_channels)) as u16,
             ((e / 7) % u64::from(height)) as u16,
             ((e / 49) % u64::from(width)) as u16),
            (0, 0, 0),
            (in_channels - 1, height - 1, width - 1),
            (0, height - 1, 0),
            (in_channels - 1, 0, width - 1),
        ];
        for (ch, y, x) in positions {
            let event = Event::update(0, ch, x, y);
            let mut naive = Vec::new();
            mapping.contributions_in_range_into(&event, range.clone(), &mut naive);
            let mut planned = Vec::new();
            plan.contributions_in_range_into(&event, range.clone(), &mut planned);
            prop_assert_eq!(&planned, &naive);
        }
    }

    /// Dense table level: the transposed weight rows reproduce the strided
    /// naive walk for any geometry and range.
    #[test]
    fn dense_plan_contributions_match_the_naive_walk(
        channels in 1u16..3,
        height in 1u16..5,
        width in 1u16..5,
        outputs in 1u16..40,
        weight_seed in 0u64..1000,
        range_lo in 0usize..48,
        range_len in 0usize..64,
    ) {
        let input = MapShape::new(channels, height, width);
        let mapping = dense_mapping(input, outputs, weight_seed, LifHardwareParams::default());
        let plan = LayerPlan::build(&mapping);
        let range = range_lo..(range_lo + range_len);
        for ch in 0..channels {
            for y in 0..height {
                for x in 0..width {
                    let event = Event::update(0, ch, x, y);
                    let mut naive = Vec::new();
                    mapping.contributions_in_range_into(&event, range.clone(), &mut naive);
                    let mut planned = Vec::new();
                    plan.contributions_in_range_into(&event, range.clone(), &mut planned);
                    prop_assert_eq!(&planned, &naive);
                }
            }
        }
    }

    /// Engine level: a planned layer run — including multi-pass layers and
    /// every execution strategy — produces the identical [`sne_sim::LayerRunOutput`]
    /// (output events, stats, per-timestep profile) as the naive run.
    #[test]
    fn planned_engine_runs_are_bit_exact(
        out_channels in 1u16..11,
        kernel_index in 0usize..2,
        leak in 0i16..3,
        threshold in 1i16..6,
        num_slices in 2usize..4,
        spikes in prop::collection::vec(
            (0u32..12, 0u16..4, 0u16..4),
            30..120,
        ),
        weight_seed in 0u64..1000,
    ) {
        let kernel = [1u16, 3][kernel_index];
        let mapping = conv_mapping(
            1, 4, 4, out_channels, kernel, weight_seed,
            LifHardwareParams { leak, threshold },
        );
        let plan = LayerPlan::build(&mapping);
        let mut stream = EventStream::new(4, 4, 1, 12);
        for (t, x, y) in spikes {
            stream.push(Event::update(t, 0, x, y)).unwrap();
        }
        let mut naive = Engine::new(small_config(num_slices));
        let expected = naive.run_layer(&mapping, &stream).unwrap();
        // Layers larger than one pass must exercise the per-pass slice
        // ranges against the shared plan.
        if usize::from(out_channels) * 16 > small_config(num_slices).total_neurons() {
            prop_assert!(naive.passes_for(&mapping) > 1);
        }
        for exec in STRATEGIES {
            let mut planned = Engine::with_exec(small_config(num_slices), exec);
            let result = planned.run_layer_planned(&mapping, &plan, &stream).unwrap();
            prop_assert_eq!(&result.output, &expected.output);
            prop_assert_eq!(result.stats, expected.stats);
            prop_assert_eq!(&result.timestep_cycles, &expected.timestep_cycles);
        }
    }

    /// Engine level, dense: the fast weight-row path is bit-exact end to end.
    #[test]
    fn planned_dense_runs_are_bit_exact(
        outputs in 1u16..40,
        leak in 0i16..3,
        threshold in 1i16..6,
        spikes in prop::collection::vec(
            (0u32..10, 0u16..4, 0u16..4),
            10..80,
        ),
        weight_seed in 0u64..1000,
    ) {
        let mapping = dense_mapping(
            MapShape::new(1, 4, 4), outputs, weight_seed,
            LifHardwareParams { leak, threshold },
        );
        let plan = LayerPlan::build(&mapping);
        let mut stream = EventStream::new(4, 4, 1, 10);
        for (t, x, y) in spikes {
            stream.push(Event::update(t, 0, x, y)).unwrap();
        }
        let mut naive = Engine::new(small_config(2));
        let expected = naive.run_layer(&mapping, &stream).unwrap();
        for exec in STRATEGIES {
            let mut planned = Engine::with_exec(small_config(2), exec);
            let result = planned.run_layer_planned(&mapping, &plan, &stream).unwrap();
            prop_assert_eq!(result, expected.clone());
        }
    }

    /// Stateful streaming: pushing chunks through the planned datapath (with
    /// resume) is bit-identical to pushing the same chunks through the naive
    /// datapath, for any cut point, leaky multi-pass layer and strategy —
    /// membrane state, TLU bookkeeping and deferred leak all carry across
    /// chunk boundaries identically. (Chunked and *whole* runs agree as
    /// per-timestep event multisets but not always in within-timestep
    /// collector interleave on multi-pass layers — a pre-existing property of
    /// the round-robin arbiter's per-run pointer reset, identical on both
    /// datapaths, so the oracle here is the naive run over the same chunks.)
    #[test]
    fn planned_stateful_chunked_resume_matches_naive_chunked(
        cut in 1u32..12,
        out_channels in 4u16..9,
        threshold in 2i16..7,
        spikes in prop::collection::vec(
            (0u32..12, 0u16..4, 0u16..4),
            40..140,
        ),
        weight_seed in 0u64..1000,
    ) {
        let mapping = conv_mapping(
            1, 4, 4, out_channels, 3, weight_seed,
            LifHardwareParams { leak: 1, threshold },
        );
        let plan = LayerPlan::build(&mapping);
        let mut stream = EventStream::new(4, 4, 1, 12);
        for (t, x, y) in spikes {
            stream.push(Event::update(t, 0, x, y)).unwrap();
        }
        // Naive oracle: the same chunk cuts, stateful resume, sequential.
        let mut oracle_engine = Engine::new(small_config(2));
        let mut oracle_state = LayerState::new(&small_config(2), &mapping);
        let mut expected_events = Vec::new();
        let mut expected_stats = Vec::new();
        for (i, (start, end)) in [(0, cut), (cut, 12)].into_iter().enumerate() {
            let chunk = stream.window(start, end);
            let run = oracle_engine
                .run_layer_stateful(&mapping, &chunk, &mut oracle_state, i > 0)
                .unwrap();
            expected_stats.push(run.stats);
            expected_events.extend(run.output.into_events().into_iter().map(|e| Event {
                t: e.t + start,
                ..e
            }));
        }

        for exec in STRATEGIES {
            let mut chunked = Engine::with_exec(small_config(2), exec);
            let mut state = LayerState::new(&small_config(2), &mapping);
            let mut events = Vec::new();
            for (i, (start, end)) in [(0, cut), (cut, 12)].into_iter().enumerate() {
                let chunk = stream.window(start, end);
                let run = chunked
                    .run_layer_stateful_planned(&mapping, &plan, &chunk, &mut state, i > 0)
                    .unwrap();
                prop_assert_eq!(run.stats, expected_stats[i]);
                events.extend(run.output.into_events().into_iter().map(|e| Event {
                    t: e.t + start,
                    ..e
                }));
            }
            prop_assert_eq!(&events[..], &expected_events[..]);
            prop_assert_eq!(&state, &oracle_state);
        }
    }
}

/// Session level: the full Fig. 6 network (two convs, pools, two dense
/// layers, multi-pass first conv) gives the identical inference result on
/// the compiled plan and on the naive oracle, whole-sample and chunked.
#[test]
fn session_plan_and_naive_datapaths_agree_on_the_fig6_network() {
    use sne::compile::CompiledNetwork;
    use sne::session::InferenceSession;
    use sne_model::topology::Topology;
    use sne_model::Shape;

    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let network =
        CompiledNetwork::random(&Topology::paper_fig6(Shape::new(2, 16, 16), 11), &mut rng)
            .unwrap();
    let stream = sne::proportionality::stream_with_activity((2, 16, 16), 8, 0.05, 17);

    let mut naive = InferenceSession::new(network.clone(), SneConfig::with_slices(8)).unwrap();
    naive.set_plan_enabled(false);
    let expected = naive.infer(&stream).unwrap();

    let mut planned = InferenceSession::new(network, SneConfig::with_slices(8)).unwrap();
    assert_eq!(planned.infer(&stream).unwrap(), expected);

    // Chunked streaming on the plan matches the naive whole run spike for
    // spike.
    planned.reset();
    let mut spikes = 0;
    for chunk in stream.chunks(3) {
        spikes += planned.push(&chunk).unwrap().output.spike_count();
    }
    assert_eq!(
        spikes as u32,
        expected.output_spike_counts.iter().sum::<u32>()
    );
}

//! Fault-injection harness for the durable session store (DESIGN.md §14):
//! a child server process is killed with `SIGKILL` mid-stream, restarted
//! against the same store directory, and the stream resumed — the outputs
//! must be **bit-identical** to an uninterrupted session. Injected
//! torn-write and flipped-byte corruption must degrade gracefully: the
//! damaged session is discarded and reported, the server stays healthy,
//! nothing panics.
//!
//! The child is this same test binary re-executed with
//! `--exact child_server --ignored`; it publishes its ephemeral port
//! through a file named by `SNE_CRASH_PORT_FILE` and then parks forever —
//! only `kill -9` ever ends it, which is exactly the point.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use sne::compile::CompiledNetwork;
use sne::session::InferenceSession;
use sne_event::EventStream;
use sne_model::topology::Topology;
use sne_model::Shape;
use sne_serve::{client, FsyncPolicy, Json, ServerBuilder};
use sne_sim::{ExecStrategy, SneConfig};

/// The fixed model both parent and child build: the restart only adopts
/// snapshots whose artifact digest matches a registered model, so the
/// seeds must agree across the process boundary.
const MODEL_SEED: u64 = 77;

fn compiled(seed: u64) -> CompiledNetwork {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
    CompiledNetwork::random(&Topology::tiny(Shape::new(2, 8, 8), 4, 3), &mut rng).unwrap()
}

fn sample(seed: u64) -> EventStream {
    sne::proportionality::stream_with_activity((2, 8, 8), 16, 0.05, seed)
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sne-crash-recovery-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id(),
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The server half of the harness. Runs only when re-executed by the
/// parent test (`--exact child_server --ignored`); inert otherwise.
#[test]
#[ignore = "helper process for the kill -9 tests; started by the parent test"]
fn child_server() {
    let Ok(store) = std::env::var("SNE_CRASH_STORE_DIR") else {
        return;
    };
    let port_file = std::env::var("SNE_CRASH_PORT_FILE").expect("port file env");
    let network = Arc::new(compiled(MODEL_SEED));
    let server = ServerBuilder::new()
        .register(
            "tiny",
            network,
            SneConfig::with_slices(2),
            2,
            ExecStrategy::Sequential,
        )
        .unwrap()
        .durable_store(store)
        // The real policy: every park survives power loss, not just
        // process death — and the harness exercises the fsync path.
        .fsync_policy(FsyncPolicy::Always)
        .start("127.0.0.1:0")
        .unwrap();
    // Publish the port atomically so the parent never reads a half-write.
    let tmp = format!("{port_file}.tmp");
    std::fs::write(&tmp, server.addr().to_string()).unwrap();
    std::fs::rename(&tmp, &port_file).unwrap();
    // Park until SIGKILL. The server lives on its reactor thread.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn spawn_server(store: &Path, port_file: &Path) -> Child {
    Command::new(std::env::current_exe().unwrap())
        .args(["--exact", "child_server", "--ignored", "--nocapture"])
        .env("SNE_CRASH_STORE_DIR", store)
        .env("SNE_CRASH_PORT_FILE", port_file)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn child server")
}

fn await_port(port_file: &Path, child: &mut Child) -> SocketAddr {
    for _ in 0..600 {
        if let Ok(contents) = std::fs::read_to_string(port_file) {
            if let Ok(addr) = contents.trim().parse() {
                return addr;
            }
        }
        if let Some(status) = child.try_wait().expect("child status") {
            panic!("child server exited before publishing its port: {status}");
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("child server did not publish a port within 30s");
}

fn push_chunk(addr: SocketAddr, session: &str, chunk: &EventStream) -> Json {
    let body = client::infer_body("tiny", chunk);
    let (status, response) =
        client::post(addr, &format!("/v1/stream/{session}/push"), &body).unwrap();
    assert_eq!(status, 200, "{response}");
    Json::parse(&response).unwrap()
}

fn response_events(doc: &Json) -> Vec<(u64, u64, u64, u64)> {
    doc.get("events")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|e| {
            let f = e.as_array().unwrap();
            (
                f[0].as_u64().unwrap(),
                f[1].as_u64().unwrap(),
                f[2].as_u64().unwrap(),
                f[3].as_u64().unwrap(),
            )
        })
        .collect()
}

fn stream_events(stream: &EventStream) -> Vec<(u64, u64, u64, u64)> {
    stream
        .iter()
        .filter(|e| e.is_spike())
        .map(|e| {
            (
                u64::from(e.t),
                u64::from(e.ch),
                u64::from(e.x),
                u64::from(e.y),
            )
        })
        .collect()
}

fn durability_stats(addr: SocketAddr) -> Json {
    let (status, body) = client::get(addr, "/v1/stats").unwrap();
    assert_eq!(status, 200);
    Json::parse(&body)
        .unwrap()
        .get("durability")
        .expect("durable server exposes durability stats")
        .clone()
}

#[test]
fn kill_nine_mid_stream_resumes_bit_identically() {
    let scratch = scratch_dir("resume");
    let store = scratch.join("store");
    let feed = sample(555);
    let chunks: Vec<EventStream> = feed.chunks(4).collect();
    let network = Arc::new(compiled(MODEL_SEED));
    let mut reference =
        InferenceSession::new(Arc::clone(&network), SneConfig::with_slices(2)).unwrap();

    // Incarnation one: two acknowledged chunks, then SIGKILL — no drain,
    // no destructors, exactly what a power cut looks like to the store.
    let port_one = scratch.join("port-1");
    let mut first = spawn_server(&store, &port_one);
    let addr = await_port(&port_one, &mut first);
    for chunk in &chunks[..2] {
        reference.push(chunk).unwrap();
        push_chunk(addr, "dvs", chunk);
    }
    first.kill().expect("SIGKILL child");
    first.wait().expect("reap child");

    // Incarnation two against the same store directory: the parked
    // session must come back and the remaining chunks must produce
    // byte-for-byte the outputs of the uninterrupted reference.
    let port_two = scratch.join("port-2");
    let mut second = spawn_server(&store, &port_two);
    let addr = await_port(&port_two, &mut second);
    let stats = durability_stats(addr);
    assert_eq!(
        stats.get("recovered_on_boot").and_then(Json::as_u64),
        Some(1)
    );
    assert_eq!(stats.get("cold_sessions").and_then(Json::as_u64), Some(1));
    for chunk in &chunks[2..] {
        let expected = reference.push(chunk).unwrap();
        let doc = push_chunk(addr, "dvs", chunk);
        assert_eq!(response_events(&doc), stream_events(&expected.output));
        assert_eq!(
            doc.get("total_cycles").and_then(Json::as_u64),
            Some(expected.stats.total_cycles)
        );
        assert_eq!(
            doc.get("start_timestep").and_then(Json::as_u64),
            Some(u64::from(expected.start_timestep))
        );
    }

    // The close summary over the whole stream matches the reference's.
    let (status, closed) = client::post(addr, "/v1/stream/dvs/close", "").unwrap();
    assert_eq!(status, 200, "{closed}");
    let doc = Json::parse(&closed).unwrap();
    let summary = reference.summary();
    assert_eq!(
        doc.get("predicted_class").and_then(Json::as_u64),
        Some(summary.predicted_class as u64)
    );
    assert_eq!(
        doc.get("total_cycles").and_then(Json::as_u64),
        Some(summary.stats.total_cycles)
    );
    assert_eq!(doc.get("chunks_pushed").and_then(Json::as_u64), Some(4));

    second.kill().expect("SIGKILL child");
    second.wait().expect("reap child");
    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn injected_corruption_degrades_to_one_lost_session() {
    let scratch = scratch_dir("corrupt");
    let store = scratch.join("store");
    let feed = sample(556);
    let chunks: Vec<EventStream> = feed.chunks(8).collect();
    let network = Arc::new(compiled(MODEL_SEED));
    let mut reference =
        InferenceSession::new(Arc::clone(&network), SneConfig::with_slices(2)).unwrap();

    // Two sessions parked, then SIGKILL.
    let port_one = scratch.join("port-1");
    let mut first = spawn_server(&store, &port_one);
    let addr = await_port(&port_one, &mut first);
    reference.push(&chunks[0]).unwrap();
    push_chunk(addr, "keep", &chunks[0]);
    push_chunk(addr, "lose", &chunks[0]);
    first.kill().expect("SIGKILL child");
    first.wait().expect("reap child");

    // Injected faults: a flipped byte in one snapshot (digest mismatch), a
    // short read (truncation), and a torn in-flight write (`.tmp` orphan).
    let lose_hex: String = "lose".bytes().map(|b| format!("{b:02x}")).collect();
    let victim = store.join(format!("s{lose_hex}.snap"));
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&victim, &bytes).unwrap();
    let truncated = std::fs::read(store.join(format!(
        "s{}.snap",
        "keep".bytes().map(|b| format!("{b:02x}")).collect::<String>()
    )))
    .unwrap();
    std::fs::write(store.join("s6261640a.snap"), &truncated[..21]).unwrap();
    std::fs::write(store.join("s746f726e.tmp"), b"torn mid-write").unwrap();

    // Restart: the intact session survives, each injected fault is a
    // counted discard, and the server keeps serving.
    let port_two = scratch.join("port-2");
    let mut second = spawn_server(&store, &port_two);
    let addr = await_port(&port_two, &mut second);
    let stats = durability_stats(addr);
    assert_eq!(
        stats.get("recovered_on_boot").and_then(Json::as_u64),
        Some(1)
    );
    assert_eq!(
        stats.get("corrupt_discarded").and_then(Json::as_u64),
        Some(3)
    );
    assert!(
        !victim.exists(),
        "corrupt snapshot deleted, not resurrected"
    );

    let expected = reference.push(&chunks[1]).unwrap();
    let doc = push_chunk(addr, "keep", &chunks[1]);
    assert_eq!(response_events(&doc), stream_events(&expected.output));
    let (status, body) = client::post(addr, "/v1/stream/lose/close", "").unwrap();
    assert_eq!(
        status, 404,
        "the corrupted session is reported lost: {body}"
    );
    let (status, _) = client::get(addr, "/healthz").unwrap();
    assert_eq!(status, 200);

    second.kill().expect("SIGKILL child");
    second.wait().expect("reap child");
    let _ = std::fs::remove_dir_all(&scratch);
}

//! Seeded randomized stress of the work-stealing scheduler: concurrent
//! interactive callers, fuzzed submit/call/drain/`set_exec` interleavings,
//! and shutdown landing mid-steal. The invariants are always the same —
//! no completion is ever lost or duplicated, ids recover submission order,
//! and every result is bit-exact against a sequential replay on a
//! dedicated session (placement, stealing and priority are invisible in
//! the output).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sne::batch::{BatchRunner, EnginePool, Scheduler};
use sne::compile::CompiledNetwork;
use sne::session::InferenceSession;
use sne::{ExecStrategy, RuntimeArtifact};
use sne_event::EventStream;
use sne_model::topology::Topology;
use sne_model::Shape;
use sne_sim::SneConfig;
use std::sync::Arc;

const STRATEGIES: [ExecStrategy; 4] = [
    ExecStrategy::Sequential,
    ExecStrategy::Threaded(2),
    ExecStrategy::Threaded(3),
    ExecStrategy::Threaded(8),
];

fn compiled(seed: u64) -> CompiledNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    CompiledNetwork::random(&Topology::tiny(Shape::new(2, 8, 8), 4, 3), &mut rng).unwrap()
}

fn workload(count: usize, seed: u64) -> Vec<EventStream> {
    (0..count)
        .map(|i| sne::proportionality::stream_with_activity((2, 8, 8), 8, 0.04, seed + i as u64))
        .collect()
}

/// Many threads hammer one scheduler with a seeded random mix of plain
/// calls, affinity-hinted calls and chunked push chains. Every thread
/// verifies its own round trips bit-exactly against a dedicated session;
/// the recorder must count exactly one completion per request.
#[test]
fn seeded_call_storm_matches_dedicated_sessions() {
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let lanes = rng.gen_range(2..=3);
        let network = Arc::new(compiled(seed));
        let artifact = Arc::new(
            RuntimeArtifact::new(Arc::clone(&network), SneConfig::with_slices(2)).unwrap(),
        );
        let pool = Arc::new(
            EnginePool::new(Arc::clone(&artifact), lanes, ExecStrategy::Sequential).unwrap(),
        );
        let scheduler = Arc::new(Scheduler::new(Arc::clone(&pool), lanes));
        let threads = 4usize;
        let per_thread_calls = 3usize;
        let completed: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let scheduler = Arc::clone(&scheduler);
                    let artifact = Arc::clone(&artifact);
                    let network = Arc::clone(&network);
                    scope.spawn(move || {
                        let mut rng = StdRng::seed_from_u64(seed * 100 + t as u64);
                        let mut session =
                            InferenceSession::new(network, SneConfig::with_slices(2)).unwrap();
                        let mut done = 0usize;
                        // Whole-sample calls, randomly affinity-hinted.
                        let streams = workload(per_thread_calls, seed * 1000 + t as u64);
                        for stream in &streams {
                            let affinity = if rng.gen_bool(0.5) {
                                Some(rng.gen_range(0..lanes))
                            } else {
                                None
                            };
                            let record = scheduler.call_with_affinity(stream.clone(), affinity);
                            assert!(record.lane < lanes);
                            assert_eq!(
                                record.result.as_ref().unwrap(),
                                &session.infer(stream).unwrap()
                            );
                            done += 1;
                        }
                        // One chunked push chain: the ClientState travels
                        // through the fleet and back; any engine may serve
                        // any chunk.
                        let feed = &workload(1, seed * 2000 + t as u64)[0];
                        let mut reference = InferenceSession::new(
                            Arc::clone(artifact.network_arc()),
                            SneConfig::with_slices(2),
                        )
                        .unwrap();
                        let mut client = artifact.new_client();
                        let mut affinity = None;
                        for chunk in feed.chunks(4) {
                            let record = scheduler.call_push(client, chunk.clone(), affinity);
                            client = record.client;
                            affinity = Some(record.lane);
                            assert_eq!(
                                record.result.as_ref().unwrap(),
                                &reference.push(&chunk).unwrap()
                            );
                            done += 1;
                        }
                        assert_eq!(artifact.summary(&client), reference.summary());
                        done
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        let stats = scheduler.stats();
        assert_eq!(stats.completed, completed as u64, "seed {seed}");
        assert_eq!(stats.errors, 0);
        drop(scheduler);
        assert_eq!(pool.idle_lanes(), lanes, "engines leaked, seed {seed}");
    }
}

/// Fuzzes the `BatchRunner` owner API: random interleavings of `submit`
/// (single and bursts), interactive `call`, `set_exec` swaps and `drain`,
/// model-checked against precomputed per-stream expectations. Bursts
/// followed by an immediate drain make the drain race in-flight steals.
#[test]
fn seeded_runner_op_fuzz_replays_sequentially() {
    let network = Arc::new(compiled(21));
    let streams = workload(6, 555);
    let mut session =
        InferenceSession::new(Arc::clone(&network), SneConfig::with_slices(2)).unwrap();
    let expected: Vec<_> = streams.iter().map(|s| session.infer(s).unwrap()).collect();

    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(900 + seed);
        let lanes = rng.gen_range(1..=3);
        let exec = STRATEGIES[rng.gen_range(0..STRATEGIES.len())];
        let mut runner =
            BatchRunner::with_exec(Arc::clone(&network), SneConfig::with_slices(2), lanes, exec)
                .unwrap();
        let mut pending: Vec<usize> = Vec::new();
        let mut last_id: Option<u64> = None;
        for _ in 0..20 {
            match rng.gen_range(0..10) {
                // Submit one random stream.
                0..=3 => {
                    let index = rng.gen_range(0..streams.len());
                    let id = runner.submit(streams[index].clone());
                    assert!(last_id.is_none_or(|prev| id > prev), "ids not monotonic");
                    last_id = Some(id);
                    pending.push(index);
                }
                // Burst-submit, so the following ops race live steals.
                4 => {
                    for _ in 0..rng.gen_range(3..7) {
                        let index = rng.gen_range(0..streams.len());
                        let id = runner.submit(streams[index].clone());
                        assert!(last_id.is_none_or(|prev| id > prev));
                        last_id = Some(id);
                        pending.push(index);
                    }
                }
                // Interactive call cuts ahead of the bulk backlog but is
                // still bit-exact.
                5..=6 => {
                    let index = rng.gen_range(0..streams.len());
                    let record = runner.scheduler().call(streams[index].clone());
                    assert_eq!(record.result.as_ref().unwrap(), &expected[index]);
                }
                // Swap the scheduler under the backlog.
                7..=8 => {
                    let exec = STRATEGIES[rng.gen_range(0..STRATEGIES.len())];
                    runner.set_exec(exec);
                }
                // Drain: exactly the pending set, in submission order.
                _ => {
                    let records = runner.drain();
                    assert_eq!(records.len(), pending.len(), "seed {seed}");
                    for (record, &index) in records.iter().zip(&pending) {
                        assert_eq!(record.result.as_ref().unwrap(), &expected[index]);
                        assert!(record.lane < lanes);
                    }
                    assert!(records.windows(2).all(|w| w[0].id < w[1].id));
                    pending.clear();
                }
            }
        }
        let records = runner.drain();
        assert_eq!(records.len(), pending.len(), "final drain, seed {seed}");
        for (record, &index) in records.iter().zip(&pending) {
            assert_eq!(record.result.as_ref().unwrap(), &expected[index]);
        }
    }
}

/// Shutdown while the backlog is still being served (and, with the grace
/// waived at close, actively stolen): every already-submitted request must
/// still complete exactly once, bit-exactly, and every engine must come
/// home.
#[test]
fn shutdown_mid_steal_loses_nothing() {
    let network = Arc::new(compiled(33));
    let mut session =
        InferenceSession::new(Arc::clone(&network), SneConfig::with_slices(2)).unwrap();
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(40 + seed);
        let lanes = rng.gen_range(2..=4);
        let backlog = rng.gen_range(5..16);
        let pool = Arc::new(
            EnginePool::for_network(
                (*network).clone(),
                SneConfig::with_slices(2),
                lanes,
                ExecStrategy::Sequential,
            )
            .unwrap(),
        );
        let mut scheduler = Scheduler::new(Arc::clone(&pool), lanes);
        let streams = workload(backlog, 7000 + seed);
        for stream in &streams {
            let _ = scheduler.submit(stream.clone());
        }
        // Close immediately: workers are mid-serve and mid-steal.
        scheduler.shutdown();
        let stats = scheduler.stats();
        assert_eq!(stats.completed, backlog as u64, "seed {seed}");
        assert_eq!(stats.errors, 0);
        let records = scheduler.drain();
        assert_eq!(records.len(), backlog, "lost/duplicated completions");
        assert!(records.windows(2).all(|w| w[0].id < w[1].id));
        for (record, stream) in records.iter().zip(&streams) {
            assert_eq!(
                record.result.as_ref().unwrap(),
                &session.infer(stream).unwrap()
            );
        }
        // Idempotent close; every engine returned.
        scheduler.shutdown();
        assert_eq!(pool.idle_lanes(), lanes, "engines leaked, seed {seed}");
    }
}

//! End-to-end workflows: training, quantization, accelerator inference,
//! energy proportionality and dataset reporting.

use sne::compile::CompiledNetwork;
use sne::proportionality::{activity_sweep, proportionality_correlation};
use sne::report::DatasetReport;
use sne::SneAccelerator;
use sne_event::datasets::{EventDataset, MotionPattern, PatternDataset};
use sne_model::inference::evaluate;
use sne_model::topology::Topology;
use sne_model::train::{to_lif_network, to_srm_network, train, TrainConfig};
use sne_model::Shape;
use sne_sim::SneConfig;

fn two_class_dataset() -> PatternDataset {
    PatternDataset::new(
        16,
        16,
        2,
        24,
        vec![
            MotionPattern::TranslatingBar {
                speed: 1.5,
                width: 3,
            },
            MotionPattern::PulsingRing {
                period: 12.0,
                max_radius_fraction: 0.8,
            },
        ],
        99,
    )
}

#[test]
fn trained_network_beats_chance_on_the_accelerator() {
    let dataset = two_class_dataset();
    let topology = Topology::tiny(Shape::new(2, 16, 16), 4, 2);
    let config = TrainConfig {
        epochs: 4,
        batch_size: 4,
        learning_rate: 0.1,
        ..TrainConfig::default()
    };
    let outcome = train(&topology, &dataset, 0..24, &config).expect("training succeeds");

    let network =
        CompiledNetwork::from_rate_network(&outcome.network).expect("compilation succeeds");
    let mut accelerator = SneAccelerator::new(SneConfig::with_slices(8));

    let mut results = Vec::new();
    let mut correct = Vec::new();
    for index in 24..40u64 {
        let sample = dataset.sample(index);
        let result = accelerator
            .run(&network, &sample.stream)
            .expect("inference succeeds");
        correct.push(result.predicted_class == sample.label);
        results.push(result);
    }
    let report = DatasetReport::from_results("pattern", &results, &correct);
    assert!(
        report.accuracy > 0.6,
        "trained accelerator accuracy {} should beat the 0.5 chance level",
        report.accuracy
    );
    assert!(report.min_energy_uj > 0.0);
    assert!(report.max_rate >= report.min_rate);
}

#[test]
fn srm_baseline_and_quantized_network_have_comparable_accuracy() {
    // The Table I comparison: quantizing to 4 bits should not collapse the
    // accuracy relative to the SRM baseline trained the same way.
    let dataset = two_class_dataset();
    let topology = Topology::tiny(Shape::new(2, 16, 16), 4, 2);
    let config = TrainConfig {
        epochs: 4,
        batch_size: 4,
        learning_rate: 0.1,
        ..TrainConfig::default()
    };
    let outcome = train(&topology, &dataset, 0..24, &config).expect("training succeeds");

    let mut srm = to_srm_network(&outcome.network).expect("SRM conversion succeeds");
    let (mut lif, report) = to_lif_network(&outcome.network).expect("LIF conversion succeeds");
    assert_eq!(report.scales.len(), 2);

    let srm_eval = evaluate(&mut srm, &dataset, 24..40).expect("SRM evaluation succeeds");
    let lif_eval = evaluate(&mut lif, &dataset, 24..40).expect("LIF evaluation succeeds");
    assert!(
        srm_eval.accuracy() > 0.55,
        "SRM accuracy {}",
        srm_eval.accuracy()
    );
    assert!(
        lif_eval.accuracy() > 0.55,
        "LIF-4b accuracy {}",
        lif_eval.accuracy()
    );
    assert!(
        (srm_eval.accuracy() - lif_eval.accuracy()).abs() <= 0.3,
        "quantization should not change accuracy wildly: SRM {} vs LIF {}",
        srm_eval.accuracy(),
        lif_eval.accuracy()
    );
}

#[test]
fn energy_is_proportional_to_input_events() {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(4);
    let topology = Topology::tiny(Shape::new(2, 12, 12), 4, 3);
    let network = CompiledNetwork::random(&topology, &mut rng).expect("compilation succeeds");
    let mut accelerator = SneAccelerator::new(SneConfig::with_slices(8));
    let points = activity_sweep(
        &mut accelerator,
        &network,
        40,
        &[0.005, 0.01, 0.02, 0.04],
        8,
    )
    .expect("sweep succeeds");
    assert!(points
        .windows(2)
        .all(|w| w[0].input_events < w[1].input_events));
    assert!(points.windows(2).all(|w| w[0].energy_uj < w[1].energy_uj));
    let r = proportionality_correlation(&points);
    assert!(r > 0.98, "events/cycles correlation {r} should be ~1");

    // The first layer's cycle cost per input event is exactly the published
    // 48-cycle consumption latency, independent of the activity level.
    for p in &points {
        assert!(p.synaptic_ops > 0);
        assert!(
            p.cycles >= p.input_events * 48,
            "every event costs at least 48 cycles"
        );
    }
}

#[test]
fn gesture_and_nmnist_surrogates_run_on_the_full_stack() {
    use sne_event::datasets::{GestureDataset, NmnistDataset};
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(6);

    let gesture = GestureDataset::new(16, 32, 3);
    let network = CompiledNetwork::random(&Topology::tiny(Shape::new(2, 16, 16), 4, 11), &mut rng)
        .expect("gesture network compiles");
    let mut accelerator = SneAccelerator::new(SneConfig::with_slices(4));
    let sample = gesture.sample(0);
    let result = accelerator
        .run(&network, &sample.stream)
        .expect("gesture inference succeeds");
    assert!(result.predicted_class < 11);
    assert!(result.stats.synaptic_ops > 0);

    let nmnist = NmnistDataset::new(32, 4);
    let network = CompiledNetwork::random(&Topology::tiny(Shape::new(2, 34, 34), 4, 10), &mut rng)
        .expect("nmnist network compiles");
    let sample = nmnist.sample(3);
    let result = accelerator
        .run(&network, &sample.stream)
        .expect("nmnist inference succeeds");
    assert_eq!(result.output_spike_counts.len(), 10);
}

#[test]
fn ablations_change_timing_but_not_results() {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(12);
    let topology = Topology::tiny(Shape::new(2, 10, 10), 4, 3);
    let network = CompiledNetwork::random(&topology, &mut rng).expect("compilation succeeds");
    let stream = sne::proportionality::stream_with_activity((2, 10, 10), 30, 0.02, 5);

    let base = SneConfig::with_slices(4);
    let variants = [
        SneConfig {
            tlu_enabled: false,
            ..base
        },
        SneConfig {
            clock_gating: false,
            ..base
        },
        SneConfig {
            broadcast: false,
            ..base
        },
        SneConfig {
            double_buffered_state: false,
            ..base
        },
    ];
    let mut baseline_accel = SneAccelerator::new(base);
    let baseline = baseline_accel
        .run(&network, &stream)
        .expect("baseline run succeeds");
    for config in variants {
        let mut accelerator = SneAccelerator::new(config);
        let result = accelerator
            .run(&network, &stream)
            .expect("variant run succeeds");
        assert_eq!(result.output_spike_counts, baseline.output_spike_counts);
    }

    // Specific timing effects.
    let mut no_tlu = SneAccelerator::new(SneConfig {
        tlu_enabled: false,
        ..base
    });
    let no_tlu_run = no_tlu.run(&network, &stream).expect("no-TLU run succeeds");
    assert!(no_tlu_run.stats.fire_cycles >= baseline.stats.fire_cycles);

    let mut single_port = SneAccelerator::new(SneConfig {
        double_buffered_state: false,
        ..base
    });
    let single_port_run = single_port
        .run(&network, &stream)
        .expect("single-port run succeeds");
    assert!(single_port_run.stats.update_cycles > baseline.stats.update_cycles);
}

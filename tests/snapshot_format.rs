//! Golden-snapshot compatibility suite for the durable store's container
//! format. A v1 client snapshot produced by a fixed seed is **committed**
//! at `tests/fixtures/client_snapshot_v1.snap`; every future revision of
//! the codebase must keep decoding it bit-identically, and a snapshot
//! claiming a newer format version must be refused as
//! `UnsupportedVersion` — never misread as the current layout. Bumping
//! `FORMAT_VERSION` therefore forces a conscious decision here: either
//! keep a v1 decode path or regenerate the fixture and own the break.
//!
//! Regenerate (only on a deliberate format change) with:
//! `cargo test --test snapshot_format regenerate_golden_fixture -- --ignored`

use std::path::PathBuf;

use proptest::prelude::*;
use sne::artifact::{ClientState, RuntimeArtifact};
use sne::compile::CompiledNetwork;
use sne::sne_store::{fnv1a, StoreError, FORMAT_VERSION, HEADER_LEN};
use sne::{ExecStrategy, SneError};
use sne_event::EventStream;
use sne_model::topology::Topology;
use sne_model::Shape;
use sne_sim::SneConfig;

/// Everything that defines the golden snapshot: model seed, engine
/// configuration, feed seed, and how many chunks were pushed before the
/// snapshot was taken.
const GOLDEN_MODEL_SEED: u64 = 2022;
const GOLDEN_FEED_SEED: u64 = 9;
const GOLDEN_CHUNKS: usize = 2;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/client_snapshot_v1.snap")
}

fn golden_artifact() -> RuntimeArtifact {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(GOLDEN_MODEL_SEED);
    let network =
        CompiledNetwork::random(&Topology::tiny(Shape::new(2, 8, 8), 4, 3), &mut rng).unwrap();
    RuntimeArtifact::new(network, SneConfig::with_slices(2)).unwrap()
}

fn golden_feed() -> Vec<EventStream> {
    sne::proportionality::stream_with_activity((2, 8, 8), 16, 0.05, GOLDEN_FEED_SEED)
        .chunks(4)
        .collect()
}

/// Replays the golden scenario live: the state the fixture must decode to.
fn golden_client(artifact: &RuntimeArtifact) -> ClientState {
    let mut engine = artifact.new_engine(ExecStrategy::Sequential);
    let mut client = artifact.new_client();
    for chunk in golden_feed().iter().take(GOLDEN_CHUNKS) {
        artifact
            .push(&mut engine, &mut client, chunk, true)
            .unwrap();
    }
    client
}

/// Writes the committed fixture. Ignored in normal runs: regenerating is
/// a format break and must be a deliberate act, reviewed together with
/// the `FORMAT_VERSION` bump that requires it.
#[test]
#[ignore = "rewrites the committed golden fixture; run only on a deliberate format change"]
fn regenerate_golden_fixture() {
    let artifact = golden_artifact();
    let bytes = artifact.snapshot_client(&golden_client(&artifact));
    std::fs::create_dir_all(fixture_path().parent().unwrap()).unwrap();
    std::fs::write(fixture_path(), bytes).unwrap();
}

#[test]
fn golden_v1_fixture_decodes_bit_identically_and_resumes() {
    let bytes = std::fs::read(fixture_path()).expect(
        "committed fixture tests/fixtures/client_snapshot_v1.snap missing — \
         regenerate_golden_fixture writes it",
    );
    let artifact = golden_artifact();
    let mut restored = artifact.restore_client(&bytes).unwrap();
    let mut live = golden_client(&artifact);
    assert_eq!(live, restored, "fixture must decode to the replayed state");

    // And it must *behave* identically from here on, not merely compare
    // equal: the remaining chunks advance both states in lockstep.
    let mut engine = artifact.new_engine(ExecStrategy::Sequential);
    for chunk in golden_feed().iter().skip(GOLDEN_CHUNKS) {
        let a = artifact.push(&mut engine, &mut live, chunk, true).unwrap();
        let b = artifact
            .push(&mut engine, &mut restored, chunk, true)
            .unwrap();
        assert_eq!(a, b);
    }
    assert_eq!(artifact.summary(&live), artifact.summary(&restored));
}

#[test]
fn fixture_matches_current_encoder_byte_for_byte() {
    // The committed bytes are exactly what today's encoder emits for the
    // same state — any codec drift (field order, widths, digests) shows
    // up as a byte diff here before it can corrupt real stores.
    let artifact = golden_artifact();
    let fresh = artifact.snapshot_client(&golden_client(&artifact));
    let committed = std::fs::read(fixture_path()).unwrap();
    assert_eq!(fresh, committed);
}

#[test]
fn future_format_versions_are_refused_not_misread() {
    assert_eq!(FORMAT_VERSION, 1, "fixture and version-gate cover v1");
    let mut bytes = std::fs::read(fixture_path()).unwrap();
    // Claim version 2 and re-seal the header checksum, exactly as a v2
    // writer would: the reader must answer UnsupportedVersion — proof the
    // version gate fires before any payload interpretation — rather than
    // decode v2 bytes with v1 rules.
    bytes[4..6].copy_from_slice(&2u16.to_le_bytes());
    let reseal = fnv1a(&bytes[..HEADER_LEN - 8]);
    bytes[HEADER_LEN - 8..HEADER_LEN].copy_from_slice(&reseal.to_le_bytes());
    let artifact = golden_artifact();
    assert!(matches!(
        artifact.restore_client(&bytes),
        Err(SneError::Snapshot(StoreError::UnsupportedVersion(2)))
    ));
}

#[test]
fn tampered_fixtures_fail_with_precise_errors() {
    let artifact = golden_artifact();
    let bytes = std::fs::read(fixture_path()).unwrap();

    // Wrong magic.
    let mut wrong_magic = bytes.clone();
    wrong_magic[0] ^= 0xFF;
    assert!(matches!(
        artifact.restore_client(&wrong_magic),
        Err(SneError::Snapshot(StoreError::BadMagic))
    ));

    // A flipped header byte (the digest field itself here) is header
    // corruption, caught by the header's own checksum.
    let mut bad_header = bytes.clone();
    bad_header[9] ^= 0x10;
    assert!(matches!(
        artifact.restore_client(&bad_header),
        Err(SneError::Snapshot(StoreError::HeaderCorrupt))
    ));

    // A torn write (any truncation point) never decodes.
    for cut in [3, HEADER_LEN - 1, HEADER_LEN + 5, bytes.len() - 1] {
        assert!(
            artifact.restore_client(&bytes[..cut]).is_err(),
            "truncation at {cut} must be rejected"
        );
    }

    // A flipped payload byte is a payload digest mismatch.
    let mut flipped = bytes.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 0x01;
    assert!(matches!(
        artifact.restore_client(&flipped),
        Err(SneError::Snapshot(StoreError::DigestMismatch { .. }))
    ));
}

proptest! {
    /// The round-trip property behind the whole durable tier, over random
    /// models, feeds and snapshot points: restoring a snapshot yields a
    /// state that is bit-identical *and stays bit-identical under `push`* —
    /// the restored client and the live one advance in lockstep through
    /// the rest of the stream and agree on the final summary.
    #[test]
    fn snapshot_round_trip_resumes_bit_identically(
        model_seed in 0u64..64,
        feed_seed in 0u64..1000,
        snap_after in 0usize..4,
        activity in 0.01f64..0.12,
    ) {
        let mut rng =
            <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(model_seed);
        let network =
            CompiledNetwork::random(&Topology::tiny(Shape::new(2, 8, 8), 4, 3), &mut rng)
                .unwrap();
        let artifact = RuntimeArtifact::new(network, SneConfig::with_slices(2)).unwrap();
        let feed = sne::proportionality::stream_with_activity((2, 8, 8), 16, activity, feed_seed);
        let chunks: Vec<EventStream> = feed.chunks(4).collect();

        let mut engine = artifact.new_engine(ExecStrategy::Sequential);
        let mut live = artifact.new_client();
        for chunk in chunks.iter().take(snap_after) {
            artifact.push(&mut engine, &mut live, chunk, true).unwrap();
        }
        let bytes = artifact.snapshot_client(&live);
        let mut restored = artifact.restore_client(&bytes).unwrap();
        prop_assert_eq!(&restored, &live);

        for chunk in chunks.iter().skip(snap_after) {
            let a = artifact.push(&mut engine, &mut live, chunk, true).unwrap();
            let b = artifact.push(&mut engine, &mut restored, chunk, true).unwrap();
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(artifact.summary(&live), artifact.summary(&restored));
    }
}

//! Property-based tests (proptest) on the core data structures and the
//! simulator invariants.

use proptest::prelude::*;
use sne_event::{Event, EventFormat, EventOp, EventStream};
use sne_model::neuron::{LifNeuron, LifParams, Neuron};
use sne_model::quant::{
    calibrate_scale, quantize_weight, QuantizedWeights, WEIGHT_MAX, WEIGHT_MIN,
};
use sne_sim::cluster::Cluster;
use sne_sim::mapping::{LayerMapping, LifHardwareParams, MapShape};
use sne_sim::{Engine, Kernel, SneConfig};

fn arbitrary_op() -> impl Strategy<Value = EventOp> {
    prop_oneof![
        Just(EventOp::Reset),
        Just(EventOp::Update),
        Just(EventOp::Fire)
    ]
}

proptest! {
    /// Packing an event into the 32-bit memory word and unpacking it must be
    /// the identity for any field values that fit the format.
    #[test]
    fn event_pack_unpack_round_trips(
        op in arbitrary_op(),
        t in 0u32..256,
        ch in 0u16..64,
        x in 0u16..256,
        y in 0u16..256,
    ) {
        let format = EventFormat::default();
        let event = Event::new(op, t, ch, x, y);
        let unpacked = format.unpack(format.pack(&event).unwrap()).unwrap();
        prop_assert_eq!(unpacked, event);
    }

    /// Quantization never leaves the 4-bit grid and its round-trip error is
    /// bounded by half a scale step for in-range weights.
    #[test]
    fn quantization_stays_on_grid_and_is_accurate(weights in prop::collection::vec(-2.0f32..2.0, 1..64)) {
        let q = QuantizedWeights::from_floats(&weights);
        prop_assert!(q.values.iter().all(|&v| (WEIGHT_MIN..=WEIGHT_MAX).contains(&v)));
        prop_assert!(q.max_error(&weights) <= q.scale / 2.0 + 1e-6);
    }

    /// The calibrated scale always allows the largest-magnitude weight to be
    /// represented without clipping more than half a step.
    #[test]
    fn calibration_covers_the_weight_range(weights in prop::collection::vec(-10.0f32..10.0, 1..32)) {
        let scale = calibrate_scale(&weights);
        prop_assert!(scale > 0.0);
        let max_abs = weights.iter().fold(0.0f32, |a, &w| a.max(w.abs()));
        let q = quantize_weight(max_abs, scale).unwrap();
        prop_assert!(q == WEIGHT_MAX || max_abs == 0.0);
    }

    /// The LIF membrane never leaves the hardware state range, whatever the
    /// input sequence.
    #[test]
    fn lif_membrane_stays_in_8_bit_range(
        inputs in prop::collection::vec(-8i32..=7, 1..200),
        leak in 0i16..4,
        threshold in 1i16..100,
    ) {
        let mut neuron = LifNeuron::new(LifParams { leak, threshold, ..LifParams::default() });
        for (i, &w) in inputs.iter().enumerate() {
            neuron.integrate(w);
            prop_assert!((-128..=127).contains(&neuron.state()));
            if i % 3 == 2 {
                let _ = neuron.fire_and_reset();
                prop_assert!((-128..=127).contains(&neuron.state()));
            }
        }
    }

    /// Skipping fire scans with the TLU (lazy leak) is functionally identical
    /// to scanning every timestep, for any update/idle pattern.
    #[test]
    fn tlu_lazy_leak_is_equivalent_to_eager_leak(
        pattern in prop::collection::vec(prop::option::weighted(0.3, -6i8..=7), 1..100),
        leak in 0i16..4,
        threshold in 2i16..40,
    ) {
        let params = LifHardwareParams { leak, threshold };
        let mut eager = Cluster::new(1);
        let mut lazy = Cluster::new(1);
        // The membrane arena normally lives in the owning slice; standalone
        // clusters get a local one-neuron buffer each.
        let mut eager_mem = [0i16; 1];
        let mut lazy_mem = [0i16; 1];
        let mut fired = Vec::new();
        for step in &pattern {
            if let Some(w) = step {
                eager.integrate(&mut eager_mem, 0, *w, params);
                lazy.integrate(&mut lazy_mem, 0, *w, params);
            }
            fired.clear();
            let _ = eager.fire_scan_into(&mut eager_mem, params, false, Kernel::Scalar, &mut fired);
            let fired_eager = !fired.is_empty();
            fired.clear();
            let _ = lazy.fire_scan_into(&mut lazy_mem, params, true, Kernel::Scalar, &mut fired);
            let fired_lazy = !fired.is_empty();
            prop_assert_eq!(fired_eager, fired_lazy);
        }
        // Force both to materialize any pending leak, then compare states.
        eager.integrate(&mut eager_mem, 0, 0, params);
        lazy.integrate(&mut lazy_mem, 0, 0, params);
        prop_assert_eq!(eager_mem[0], lazy_mem[0]);
    }

    /// Stream statistics: activity is always in [0, 1] and equals
    /// spikes / volume.
    #[test]
    fn stream_activity_is_consistent(
        spikes in prop::collection::vec((0u32..20, 0u16..2, 0u16..8, 0u16..8), 0..100)
    ) {
        let mut stream = EventStream::new(8, 8, 2, 20);
        for (t, c, x, y) in spikes {
            stream.push(Event::update(t, c, x, y)).unwrap();
        }
        let activity = stream.activity();
        prop_assert!((0.0..=1.0).contains(&activity));
        let volume = 8.0 * 8.0 * 2.0 * 20.0;
        prop_assert!((activity - stream.spike_count() as f64 / volume).abs() < 1e-12);
        let stats = stream.stats();
        prop_assert_eq!(stats.total_spikes, stream.spike_count());
    }

    /// Engine invariant: cycles and synaptic operations grow monotonically
    /// with the number of input events, and the SOP count never exceeds
    /// events × receptive field × output channels.
    #[test]
    fn engine_cycles_scale_with_events(event_count in 1usize..40) {
        let mapping = LayerMapping::conv(
            MapShape::new(1, 6, 6),
            2,
            3,
            vec![1i8; 18],
            LifHardwareParams { leak: 0, threshold: 50 },
        ).unwrap();
        let mut stream = EventStream::new(6, 6, 1, 50);
        for i in 0..event_count {
            stream.push(Event::update((i % 50) as u32, 0, (i % 6) as u16, ((i / 6) % 6) as u16)).unwrap();
        }
        let mut engine = Engine::new(SneConfig { num_slices: 1, clusters_per_slice: 2, neurons_per_cluster: 64, ..SneConfig::default() });
        let result = engine.run_layer(&mapping, &stream).unwrap();
        prop_assert_eq!(result.stats.input_events as usize, event_count);
        prop_assert!(result.stats.update_cycles as usize == event_count * 48);
        prop_assert!(result.stats.synaptic_ops <= (event_count * 9 * 2) as u64);
        prop_assert!(result.stats.synaptic_ops >= (event_count * 4 * 2) as u64);
    }
}

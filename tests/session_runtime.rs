//! Integration suite of the compile-once, run-many execution runtime:
//! streaming equivalence, reset semantics, pipelined-makespan regression and
//! batched serving.

use proptest::prelude::*;
use sne::batch::BatchRunner;
use sne::compile::CompiledNetwork;
use sne::session::{InferenceSession, PipelinedSession};
use sne::{SneAccelerator, SneError};
use sne_event::{Event, EventStream};
use sne_model::topology::Topology;
use sne_model::Shape;
use sne_sim::SneConfig;

fn compiled(seed: u64) -> CompiledNetwork {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
    CompiledNetwork::random(&Topology::tiny(Shape::new(2, 8, 8), 4, 3), &mut rng).unwrap()
}

fn sample_stream(seed: u64, timesteps: u32, activity: f64) -> EventStream {
    sne::proportionality::stream_with_activity((2, 8, 8), timesteps, activity, seed)
}

const TIMESTEPS: u32 = 12;

proptest! {
    /// For any synthetic stream split at arbitrary chunk boundaries, pushing
    /// the chunks through one session produces the same output events and
    /// spike counts as a single `infer` over the whole stream.
    #[test]
    fn chunked_push_is_equivalent_to_whole_infer(
        spikes in prop::collection::vec(
            (0u32..TIMESTEPS, 0u16..2, 0u16..8, 0u16..8),
            0..60,
        ),
        boundaries in prop::collection::vec(1u32..TIMESTEPS, 0..5),
        seed in 0u64..32,
    ) {
        let mut stream = EventStream::new(8, 8, 2, TIMESTEPS);
        for (t, c, x, y) in spikes {
            stream.push(Event::update(t, c, x, y)).unwrap();
        }
        let network = compiled(seed);
        let config = SneConfig::with_slices(2);

        // Reference: one whole-stream inference, and the whole stream pushed
        // as a single chunk (for the event-level comparison).
        let mut reference = InferenceSession::new(network.clone(), config).unwrap();
        let whole = reference.infer(&stream).unwrap();
        reference.reset();
        let whole_events = reference.push(&stream).unwrap().output.into_events();

        // Split [0, TIMESTEPS) at the sampled boundaries.
        let mut cuts = boundaries;
        cuts.sort_unstable();
        cuts.dedup();
        cuts.push(TIMESTEPS);
        let mut session = InferenceSession::new(network, config).unwrap();
        let mut events = Vec::new();
        let mut start = 0u32;
        for end in cuts {
            let out = session.push(&stream.window(start, end)).unwrap();
            prop_assert_eq!(out.start_timestep, start);
            events.extend(out.output.into_events());
            start = end;
        }
        prop_assert_eq!(session.elapsed_timesteps(), TIMESTEPS);

        let summary = session.summary();
        prop_assert_eq!(&summary.output_spike_counts, &whole.output_spike_counts);
        prop_assert_eq!(summary.predicted_class, whole.predicted_class);
        prop_assert_eq!(summary.stats.synaptic_ops, whole.stats.synaptic_ops);
        prop_assert_eq!(summary.stats.output_events, whole.stats.output_events);
        prop_assert_eq!(events, whole_events);
    }

    /// `reset()` restores a state identical to a freshly compiled session:
    /// the same reference stream produces identical results afterwards.
    #[test]
    fn reset_matches_a_freshly_compiled_session(
        pollute_seed in 0u64..1000,
        chunk in 1u32..TIMESTEPS,
    ) {
        let network = compiled(3);
        let config = SneConfig::with_slices(2);
        let reference_stream = sample_stream(77, TIMESTEPS, 0.06);

        let mut fresh = InferenceSession::new(network.clone(), config).unwrap();
        let expected = fresh.infer(&reference_stream).unwrap();

        let mut session = InferenceSession::new(network, config).unwrap();
        // Pollute the persistent neuron state with a partial stream...
        let pollution = sample_stream(pollute_seed, TIMESTEPS, 0.08);
        let _ = session.push(&pollution.window(0, chunk)).unwrap();
        // ... then reset and replay the reference stream.
        session.reset();
        let result = session.infer(&reference_stream).unwrap();
        prop_assert_eq!(result, expected);
    }
}

#[test]
fn streaming_chunks_iterator_equivalence_on_a_dense_stream() {
    // Deterministic belt-and-braces version of the property above, using
    // EventStream::chunks on a high-activity stream.
    let network = compiled(9);
    let config = SneConfig::with_slices(2);
    let stream = sample_stream(5, 30, 0.1);

    let mut whole = InferenceSession::new(network.clone(), config).unwrap();
    whole.reset();
    let reference = whole.push(&stream).unwrap();

    for chunk_len in [1u32, 3, 7, 30, 64] {
        let mut session = InferenceSession::new(network.clone(), config).unwrap();
        let mut events = Vec::new();
        for chunk in stream.chunks(chunk_len) {
            events.extend(session.push(&chunk).unwrap().output.into_events());
        }
        assert_eq!(
            events,
            reference.output.as_slice(),
            "chunk length {chunk_len} must not change the output"
        );
    }
}

#[test]
fn pipelined_makespan_comes_from_the_overlapped_schedule() {
    let network = compiled(21);
    let stream = sample_stream(31, 40, 0.05);
    let mut accelerator = SneAccelerator::new(SneConfig::with_slices(8));

    let serial = accelerator.run(&network, &stream).unwrap();
    let pipelined = accelerator.run_pipelined(&network, &stream).unwrap();

    // Functionally identical.
    assert_eq!(serial.output_spike_counts, pipelined.output_spike_counts);
    assert_eq!(serial.predicted_class, pipelined.predicted_class);

    // Regression: the makespan is a real overlapped schedule — strictly
    // bounded by the slowest layer from below and the serial schedule from
    // above (the layers share no engine, so the serial sum is the no-overlap
    // upper bound).
    let slowest_layer = pipelined
        .layers
        .iter()
        .map(|l| l.stats.total_cycles)
        .max()
        .unwrap();
    let layer_sum: u64 = pipelined.layers.iter().map(|l| l.stats.total_cycles).sum();
    assert!(pipelined.stats.total_cycles >= slowest_layer);
    assert!(pipelined.stats.total_cycles <= layer_sum);
    assert!(pipelined.stats.total_cycles <= serial.stats.total_cycles);
    // A multi-layer pipeline with real traffic cannot finish exactly when its
    // slowest layer does: downstream layers still drain the last timestep.
    assert!(
        pipelined.stats.total_cycles > slowest_layer,
        "makespan {} must include pipeline drain beyond the slowest layer {}",
        pipelined.stats.total_cycles,
        slowest_layer
    );
    // Derived quantities follow the overlapped schedule.
    assert!(pipelined.inference_time_ms < serial.inference_time_ms);
    assert!(pipelined.energy.energy_uj <= serial.energy.energy_uj);
}

#[test]
fn pipelined_session_is_reusable_and_matches_the_accelerator() {
    let network = compiled(22);
    let stream = sample_stream(33, 24, 0.04);
    let mut accelerator = SneAccelerator::new(SneConfig::with_slices(8));
    let expected = accelerator.run_pipelined(&network, &stream).unwrap();
    let mut session = PipelinedSession::new(network, SneConfig::with_slices(8)).unwrap();
    for _ in 0..3 {
        assert_eq!(session.infer(&stream).unwrap(), expected);
    }
}

#[test]
fn batch_runner_serves_many_streams_on_few_lanes() {
    let network = compiled(40);
    let streams: Vec<EventStream> = (0..10)
        .map(|i| sample_stream(200 + i, 16, 0.03 + 0.002 * i as f64))
        .collect();

    let mut runner = BatchRunner::new(network.clone(), SneConfig::with_slices(4), 3).unwrap();
    let report = runner.run(&streams).unwrap();
    assert_eq!(report.results.len(), 10);

    // Every batched result matches a dedicated accelerator run.
    let mut accelerator = SneAccelerator::new(SneConfig::with_slices(4));
    for (stream, result) in streams.iter().zip(&report.results) {
        assert_eq!(&accelerator.run(&network, stream).unwrap(), result);
    }

    // Aggregates are consistent.
    let energy: f64 = report.results.iter().map(|r| r.energy.energy_uj).sum();
    assert!((report.total_energy_uj - energy).abs() < 1e-9);
    assert!(report.makespan_ms > 0.0);
    assert!(report.aggregate_rate > 0.0);

    // More lanes never slow the batch down (same work, more hardware).
    let mut wide = BatchRunner::new(network, SneConfig::with_slices(4), 10).unwrap();
    let wide_report = wide.run(&streams).unwrap();
    assert!(wide_report.makespan_ms <= report.makespan_ms + 1e-9);
    assert!((wide_report.total_energy_uj - report.total_energy_uj).abs() < 1e-9);
}

#[test]
fn session_errors_are_well_typed() {
    let network = compiled(50);
    let mut session = InferenceSession::new(network.clone(), SneConfig::with_slices(2)).unwrap();
    let wrong = EventStream::new(4, 4, 2, 8);
    assert!(matches!(
        session.push(&wrong),
        Err(SneError::GeometryMismatch { .. })
    ));
    assert!(matches!(
        BatchRunner::new(network, SneConfig::with_slices(2), 0),
        Err(SneError::EmptyBatch)
    ));
}
